"""Portfolio execution: first-winner racing on the persistent worker pool.

The paper's central throughput claim is that many tool-flow configurations —
SAT procedures, parameter variations, encodings, decomposition windows — run
*in parallel* and the first definitive answer wins.  The
:class:`PortfolioExecutor` makes that race real:

* jobs run on the shared, **persistent** :class:`~repro.exec.pool.WorkerPool`
  (one pool per execution mode, living across races), so worker processes
  are spawned once and warm incremental engines survive from race to race;
* results stream back **as they complete** (``as_completed`` style), so
  partial results are observable while the race is still running;
* :meth:`PortfolioExecutor.race` declares the first definitive SAT/UNSAT
  answer the winner and sets a shared :class:`CancellationToken`; the pool
  bridges the token to every running job *individually* (and retires queued
  jobs parent-side), and every losing solver polls it through its
  :class:`~repro.sat.types.Budget` and returns at its next periodic check;
* :meth:`PortfolioExecutor.run_all` is the no-early-exit shape the batch
  API (:func:`repro.sat.solve_batch`) runs on.

Execution modes:

``processes``
    Jobs ship to persistent worker processes over a queue protocol; CNFs
    already cached by a worker are not re-shipped, and same-CNF assumption
    jobs are pinned to the worker holding their warm engine.  Workers that
    ignore cancellation (backends with ``cancellable=False``, e.g. ``bdd``)
    are terminated after ``join_grace`` seconds and the pool respawns a
    replacement.
``threads``
    Persistent in-process worker threads.  Pure-Python solvers interleave
    under the GIL, so this mode buys cancellation (the first winner stops
    the other strategies) rather than hardware parallelism.
``inline``
    Sequential execution with the token checked between jobs — the
    degenerate race used when only one worker is available.  Warm engines
    live on the pool object itself.

The worker count resolves like :func:`repro.sat.solve_batch`'s: an explicit
``max_workers`` argument, overridden by the ``REPRO_BATCH_WORKERS``
environment variable (invalid values emit a ``RuntimeWarning`` and are
ignored), defaulting to the CPU count.  ``max_workers`` bounds this
executor's concurrently *running* jobs; the underlying shared pool may be
larger, serving other callers at the same time.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..sat.types import SAT, UNSAT, SolverResult
from .cancellation import CancellationToken
from .pool import (
    ERROR_BACKEND,
    ERROR_CRASH,
    INLINE,
    PROCESSES,
    THREADS,
    Completion,
    WorkerPool,
    execute_job,
    get_shared_pool,
    processes_available,
)

__all__ = [
    "Completion",
    "ERROR_BACKEND",
    "ERROR_CRASH",
    "INLINE",
    "PROCESSES",
    "PortfolioExecutor",
    "RaceOutcome",
    "THREADS",
    "execute_job",
    "resolve_worker_count",
]


def resolve_worker_count(n_jobs: int, max_workers: Optional[int] = None) -> int:
    """Resolve the worker count from the argument, env var and CPU count.

    ``REPRO_BATCH_WORKERS`` overrides ``max_workers``; a value that is not
    an integer emits a ``RuntimeWarning`` and is ignored (``1`` or ``0``
    force in-process execution).
    """
    env = os.environ.get("REPRO_BATCH_WORKERS")
    if env is not None:
        try:
            max_workers = int(env)
        except ValueError:
            warnings.warn(
                "ignoring invalid REPRO_BATCH_WORKERS=%r: expected an integer "
                "(0 or 1 disable multiprocessing); see README" % (env,),
                RuntimeWarning,
                stacklevel=3,
            )
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    return max(0, min(max_workers, n_jobs))


@dataclass
class RaceOutcome:
    """Everything observed during one first-winner race."""

    jobs: List[object]
    mode: str
    workers: int
    winner_index: Optional[int]
    #: completions in arrival order (streaming order of the race).
    completions: List[Completion]
    #: results in job order; cancelled/skipped jobs carry ``unknown``
    #: placeholder results, errored jobs ``None``.
    results: List[Optional[SolverResult]]
    wall_seconds: float

    @property
    def winner(self) -> Optional[SolverResult]:
        if self.winner_index is None:
            return None
        return self.results[self.winner_index]

    @property
    def cancelled_indices(self) -> List[int]:
        return sorted(c.index for c in self.completions if c.cancelled)

    def summary(self) -> Dict[str, object]:
        """Compact metadata dictionary attached to verification results."""
        winner_tag = None
        if self.winner_index is not None:
            winner_tag = getattr(self.jobs[self.winner_index], "tag", "") or str(
                self.winner_index
            )
        summary = {
            "mode": self.mode,
            "workers": self.workers,
            "strategies": len(self.jobs),
            "winner_index": self.winner_index,
            "winner": winner_tag,
            "cancelled": len(self.cancelled_indices),
            "wall_seconds": round(self.wall_seconds, 6),
            "arrival_order": [c.index for c in self.completions],
        }
        sharing = self.sharing_counters()
        if any(sharing.values()):
            summary["sharing"] = sharing
        return summary

    def sharing_counters(self) -> Dict[str, int]:
        """Clause-exchange totals across the race (all zero when off)."""
        exported = imported = useful = 0
        for result in self.results:
            if result is None:
                continue
            exported += result.stats.exported_clauses
            imported += result.stats.imported_clauses
            useful += result.stats.useful_imports
        return {
            "exported_clauses": exported,
            "imported_clauses": imported,
            "useful_imports": useful,
        }


def _definitive_default(result: SolverResult) -> bool:
    return result.status in (SAT, UNSAT)


class PortfolioExecutor:
    """Races or fans out CNF solve jobs across pool workers with cancellation.

    ``max_workers`` bounds concurrently running jobs (resolved through
    :func:`resolve_worker_count`); ``mode`` forces an execution mode
    (``"processes"`` / ``"threads"`` / ``"inline"``) instead of the
    automatic choice; ``join_grace`` is how long :meth:`race` waits for a
    cancelled worker process to exit cooperatively before the pool
    terminates (and respawns) it.  ``pool`` substitutes a private
    :class:`~repro.exec.pool.WorkerPool` for the shared per-mode one —
    benchmarks use this to compare warm against cold execution.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        mode: Optional[str] = None,
        join_grace: float = 10.0,
        pool: Optional[WorkerPool] = None,
        clause_sharing=None,
    ) -> None:
        if mode not in (None, PROCESSES, THREADS, INLINE):
            raise ValueError(
                "unknown executor mode %r; expected one of %s"
                % (mode, ", ".join((PROCESSES, THREADS, INLINE)))
            )
        self.max_workers = max_workers
        self.mode = mode
        self.join_grace = join_grace
        self.pool = pool
        #: clause exchange across same-CNF jobs: ``None`` defers to
        #: ``REPRO_CLAUSE_SHARING``, ``True``/``False`` force it on/off, a
        #: positive integer sets the per-interval export budget.
        self.clause_sharing = clause_sharing

    # ------------------------------------------------------------------
    def _plan(self, jobs: Sequence) -> Tuple[str, int]:
        workers = resolve_worker_count(len(jobs), self.max_workers)
        mode = self.mode
        if self.pool is not None and mode is None:
            mode = self.pool.mode
        if mode is None:
            if workers <= 1 or len(jobs) <= 1:
                mode = INLINE
            elif self._processes_usable(jobs):
                mode = PROCESSES
            else:
                mode = THREADS
        elif mode == PROCESSES and not self._processes_usable(jobs):
            # Requested processes in an environment that cannot spawn them
            # (or with non-picklable jobs): threads preserve the race
            # semantics, just without hardware parallelism.
            mode = THREADS
        return mode, max(1, workers)

    def _pool_for(self, mode: str) -> WorkerPool:
        if self.pool is not None:
            return self.pool
        return get_shared_pool(mode)

    def _sharing(self, jobs: Sequence):
        """Clause-sharing activation for these jobs (no-op context when off).

        While active, jobs on the same CNF fingerprint exchange learned
        clauses through one :class:`~repro.exec.exchange.ExchangeHub` —
        including the selector-partitioned jobs of a decomposed race, which
        share a single fingerprint.
        """
        from .exchange import activation_for, resolve_sharing

        budget = resolve_sharing(self.clause_sharing)
        if budget is None:
            return activation_for((), None)
        from ..pipeline.fingerprint import cnf_digest

        fingerprints = {
            cnf_digest(job.cnf)
            for job in jobs
            if getattr(job, "cnf", None) is not None
        }
        return activation_for(fingerprints, budget)

    @staticmethod
    def _processes_usable(jobs: Sequence) -> bool:
        if not processes_available():
            return False
        probe = jobs[0]
        if getattr(probe, "cancel", None) is not None:
            # Job-level tokens never cross the process boundary (the pool
            # bridges them parent-side), so probe the job without one.
            import dataclasses

            try:
                probe = dataclasses.replace(probe, cancel=None)
            except Exception:
                pass
        try:
            # Probe one representative job (jobs are homogeneous CNF
            # records; pickling all of them would serialise every CNF twice).
            pickle.dumps(probe)
        except Exception:
            return False
        return True

    # ------------------------------------------------------------------
    # Streaming execution (as_completed semantics)
    # ------------------------------------------------------------------
    def stream(
        self,
        jobs: Sequence,
        cancel: Optional[CancellationToken] = None,
        validate: bool = True,
    ) -> Iterator[Completion]:
        """Yield a :class:`Completion` per job, in completion order.

        ``cancel`` is shared with every job's budget; setting it (e.g. from
        the consumer of this iterator) stops running jobs cooperatively and
        skips jobs not yet started, which then stream back as cancelled
        placeholders.
        """
        jobs = list(jobs)
        if validate:
            for job in jobs:
                job.validate()
        if not jobs:
            return
        mode, workers = self._plan(jobs)
        with self._sharing(jobs):
            yield from self._pool_for(mode).stream(
                jobs,
                cancel=cancel,
                slots=workers,
                validate=False,
                join_grace=self.join_grace,
            )

    # ------------------------------------------------------------------
    # High-level entry points
    # ------------------------------------------------------------------
    def race(
        self,
        jobs: Sequence,
        definitive: Optional[Callable[[SolverResult], bool]] = None,
        cancel: Optional[CancellationToken] = None,
        validate: bool = True,
    ) -> RaceOutcome:
        """Race jobs; the first definitive answer wins, losers are cancelled.

        ``definitive`` decides which results end the race (default: any
        ``sat`` or ``unsat`` answer).  Erroring strategies never win; they
        are recorded on their completion and the race continues.  When no
        definitive answer arrives every job runs to completion, exactly like
        :meth:`run_all`.
        """
        jobs = list(jobs)
        if validate:
            for job in jobs:
                job.validate()
        definitive = definitive or _definitive_default
        if not jobs:
            return RaceOutcome(
                jobs=[], mode=INLINE, workers=0, winner_index=None,
                completions=[], results=[], wall_seconds=0.0,
            )
        mode, workers = self._plan(jobs)
        if cancel is None:
            cancel = CancellationToken()
        started = time.perf_counter()
        winner_index: Optional[int] = None
        completions: List[Completion] = []
        results: List[Optional[SolverResult]] = [None] * len(jobs)
        with self._sharing(jobs):
            for completion in self._pool_for(mode).stream(
                jobs, cancel=cancel, slots=workers, validate=False,
                join_grace=self.join_grace,
            ):
                if (
                    winner_index is not None
                    and not completion.cancelled
                    and completion.result is not None
                    and completion.result.is_unknown
                ):
                    # An unknown that arrives after the race is decided is a
                    # loser that stopped at its budget hook.
                    completion.cancelled = True
                completions.append(completion)
                if completion.result is not None:
                    results[completion.index] = completion.result
                if (
                    winner_index is None
                    and completion.error is None
                    and not completion.cancelled
                    and completion.result is not None
                    and definitive(completion.result)
                ):
                    winner_index = completion.index
                    cancel.cancel()
        return RaceOutcome(
            jobs=jobs,
            mode=mode,
            workers=workers,
            winner_index=winner_index,
            completions=completions,
            results=results,
            wall_seconds=time.perf_counter() - started,
        )

    def run_all(self, jobs: Sequence, validate: bool = True) -> List[SolverResult]:
        """Run every job to completion; results in job order.

        This is the executor shape :func:`repro.sat.solve_batch` runs on: no
        early termination, deterministic per-job results, worker crashes
        propagate.  Jobs whose backend exists only in the parent process
        (runtime registrations invisible to pool workers) are handled by
        the pool itself, which reroutes them to its parent-side thread
        lane before they ever surface here.
        """
        jobs = list(jobs)
        if validate:
            for job in jobs:
                job.validate()
        if not jobs:
            return []
        results: List[Optional[SolverResult]] = [None] * len(jobs)
        for completion in self.stream(jobs, validate=False):
            if completion.error is not None:
                if completion.exception is not None:
                    # Preserve the original exception type (a deterministic
                    # solver error propagates exactly as it would have
                    # in-process).
                    raise completion.exception
                raise RuntimeError(
                    "batch job %d (%s) failed: %s"
                    % (
                        completion.index,
                        getattr(completion.job, "solver", "?"),
                        completion.error,
                    )
                )
            results[completion.index] = completion.result
        return results  # type: ignore[return-value]
