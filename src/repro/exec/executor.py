"""Portfolio execution: first-winner racing with cooperative cancellation.

The paper's central throughput claim is that many tool-flow configurations —
SAT procedures, parameter variations, encodings, decomposition windows — run
*in parallel* and the first definitive answer wins.  The
:class:`PortfolioExecutor` makes that race real:

* jobs fan out over **worker processes** (preferred), falling back to
  threads or plain in-process execution in restricted environments;
* results stream back **as they complete** (``as_completed`` style), so
  partial results are observable while the race is still running;
* :meth:`PortfolioExecutor.race` declares the first definitive SAT/UNSAT
  answer the winner and sets a shared :class:`CancellationToken`; every
  losing solver polls the token through its :class:`~repro.sat.types.Budget`
  and returns at its next periodic check;
* :meth:`PortfolioExecutor.run_all` is the no-early-exit shape the batch
  API (:func:`repro.sat.solve_batch`) runs on.

Execution modes:

``processes``
    One worker process per running job (at most ``max_workers`` at a time),
    a shared multiprocessing event as the cancellation token, results
    streamed over a queue.  Losers that ignore the token (backends with
    ``cancellable=False``, e.g. ``bdd``) are terminated after
    ``join_grace`` seconds.  A process per job (rather than a reused pool)
    is deliberate: it gives the race hard per-job termination without
    poisoning sibling jobs, and the fork cost is noise against solver
    runtimes; under the ``spawn`` start method long batches of very short
    jobs pay interpreter startup per job — force ``REPRO_BATCH_WORKERS=0``
    or thread mode there.
``threads``
    In-process worker threads.  Pure-Python solvers interleave under the
    GIL, so this mode buys cancellation (the first winner stops the other
    strategies) rather than hardware parallelism.
``inline``
    Sequential execution with the token checked between jobs — the
    degenerate race used when only one worker is available.

The worker count resolves like :func:`repro.sat.solve_batch`'s: an explicit
``max_workers`` argument, overridden by the ``REPRO_BATCH_WORKERS``
environment variable (invalid values emit a ``RuntimeWarning`` and are
ignored), defaulting to the CPU count.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_module
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..sat.registry import get_backend
from ..sat.types import SAT, UNKNOWN, UNSAT, SolverResult
from .cancellation import CancellationToken, process_token

#: Execution-mode names (see the module docstring).
PROCESSES = "processes"
THREADS = "threads"
INLINE = "inline"

#: Worker-error kinds carried on :class:`Completion`.
ERROR_BACKEND = "backend"
ERROR_CRASH = "error"


def resolve_worker_count(n_jobs: int, max_workers: Optional[int] = None) -> int:
    """Resolve the worker count from the argument, env var and CPU count.

    ``REPRO_BATCH_WORKERS`` overrides ``max_workers``; a value that is not
    an integer emits a ``RuntimeWarning`` and is ignored (``1`` or ``0``
    force in-process execution).
    """
    env = os.environ.get("REPRO_BATCH_WORKERS")
    if env is not None:
        try:
            max_workers = int(env)
        except ValueError:
            warnings.warn(
                "ignoring invalid REPRO_BATCH_WORKERS=%r: expected an integer "
                "(0 or 1 disable multiprocessing); see README" % (env,),
                RuntimeWarning,
                stacklevel=3,
            )
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    return max(0, min(max_workers, n_jobs))


def execute_job(job, cancel: Optional[CancellationToken] = None) -> SolverResult:
    """Run one :class:`~repro.sat.batch.SolveJob` to completion.

    The job's budget is created *here* (so wall-clock limits are measured
    where the work happens) and wired to the cancellation token, which the
    solver polls through its existing budget hooks.
    """
    backend = get_backend(job.solver)
    started = time.perf_counter()
    result = backend.solve(
        job.cnf,
        seed=job.seed,
        budget=job.budget(cancel=cancel),
        assumptions=job.assumptions,
        **job.options,
    )
    if not result.stats.time_seconds:
        result.stats.time_seconds = time.perf_counter() - started
    return result


def _cancelled_result(job) -> SolverResult:
    """Placeholder result for a job cancelled before (or instead of) running."""
    return SolverResult(UNKNOWN, solver_name=job.solver)


@dataclass
class Completion:
    """One streamed race event: job ``index`` finished with ``result``.

    ``cancelled`` marks results that arrived after the race was decided
    (or jobs skipped entirely once the token was set); ``error`` carries a
    worker-side failure message with ``error_kind`` distinguishing a missing
    backend registration (``"backend"``) from a crash (``"error"``).
    """

    index: int
    job: object
    result: Optional[SolverResult]
    wall_seconds: float = 0.0
    cancelled: bool = False
    error: Optional[str] = None
    error_kind: Optional[str] = None
    #: the original exception object, when it survived the worker boundary
    #: (always for inline/thread modes; for process workers when picklable).
    exception: Optional[BaseException] = None


@dataclass
class RaceOutcome:
    """Everything observed during one first-winner race."""

    jobs: List[object]
    mode: str
    workers: int
    winner_index: Optional[int]
    #: completions in arrival order (streaming order of the race).
    completions: List[Completion]
    #: results in job order; cancelled/skipped jobs carry ``unknown``
    #: placeholder results, errored jobs ``None``.
    results: List[Optional[SolverResult]]
    wall_seconds: float

    @property
    def winner(self) -> Optional[SolverResult]:
        if self.winner_index is None:
            return None
        return self.results[self.winner_index]

    @property
    def cancelled_indices(self) -> List[int]:
        return sorted(c.index for c in self.completions if c.cancelled)

    def summary(self) -> Dict[str, object]:
        """Compact metadata dictionary attached to verification results."""
        winner_tag = None
        if self.winner_index is not None:
            winner_tag = getattr(self.jobs[self.winner_index], "tag", "") or str(
                self.winner_index
            )
        return {
            "mode": self.mode,
            "workers": self.workers,
            "strategies": len(self.jobs),
            "winner_index": self.winner_index,
            "winner": winner_tag,
            "cancelled": len(self.cancelled_indices),
            "wall_seconds": round(self.wall_seconds, 6),
            "arrival_order": [c.index for c in self.completions],
        }


def _definitive_default(result: SolverResult) -> bool:
    return result.status in (SAT, UNSAT)


def _error_fields(error) -> Tuple[Optional[str], Optional[BaseException]]:
    """Normalise a worker error (exception object or string) for Completion."""
    if error is None:
        return None, None
    if isinstance(error, BaseException):
        return "%s: %s" % (type(error).__name__, error), error
    return str(error), None


# ----------------------------------------------------------------------
# Worker bodies
# ----------------------------------------------------------------------
def _probe_target() -> None:  # pragma: no cover - runs in a child process
    pass


def _process_worker(index, job, token, out_queue):  # pragma: no cover - child
    """Run one job inside a worker process and report over the queue."""
    try:
        try:
            get_backend(job.solver)
        except ValueError as exc:
            # Backend registered only in the parent (see solve_batch's
            # fallback contract): report so the parent can run it inline.
            out_queue.put((index, None, str(exc), ERROR_BACKEND))
            return
        result = execute_job(job, cancel=token)
        out_queue.put((index, result, None, None))
    except Exception as exc:
        try:
            # Ship the exception object itself so the parent can re-raise
            # with the original type (matching in-process execution) ...
            out_queue.put((index, None, exc, ERROR_CRASH))
        except Exception:
            # ... degrading to its rendering when it does not pickle.
            out_queue.put(
                (index, None, "%s: %s" % (type(exc).__name__, exc), ERROR_CRASH)
            )


_PROCESS_PROBE: Optional[bool] = None


def _processes_available() -> bool:
    """One-time probe: can this environment spawn worker processes at all?"""
    global _PROCESS_PROBE
    if _PROCESS_PROBE is None:
        try:
            import multiprocessing

            ctx = multiprocessing.get_context()
            proc = ctx.Process(target=_probe_target, daemon=True)
            proc.start()
            proc.join(10)
            _PROCESS_PROBE = proc.exitcode == 0
        except Exception:
            _PROCESS_PROBE = False
    return _PROCESS_PROBE


class PortfolioExecutor:
    """Races or fans out CNF solve jobs across workers with cancellation.

    ``max_workers`` bounds concurrently running jobs (resolved through
    :func:`resolve_worker_count`); ``mode`` forces an execution mode
    (``"processes"`` / ``"threads"`` / ``"inline"``) instead of the
    automatic choice; ``join_grace`` is how long :meth:`race` waits for a
    cancelled worker process to exit cooperatively before terminating it.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        mode: Optional[str] = None,
        join_grace: float = 10.0,
    ) -> None:
        if mode not in (None, PROCESSES, THREADS, INLINE):
            raise ValueError(
                "unknown executor mode %r; expected one of %s"
                % (mode, ", ".join((PROCESSES, THREADS, INLINE)))
            )
        self.max_workers = max_workers
        self.mode = mode
        self.join_grace = join_grace

    # ------------------------------------------------------------------
    def _plan(self, jobs: Sequence) -> Tuple[str, int, object]:
        workers = resolve_worker_count(len(jobs), self.max_workers)
        mode = self.mode
        if mode is None:
            if workers <= 1 or len(jobs) <= 1:
                mode = INLINE
            elif self._processes_usable(jobs):
                mode = PROCESSES
            else:
                mode = THREADS
        elif mode == PROCESSES and not self._processes_usable(jobs):
            # Requested processes in an environment that cannot spawn them
            # (or with non-picklable jobs): threads preserve the race
            # semantics, just without hardware parallelism.
            mode = THREADS
        ctx = None
        if mode == PROCESSES:
            import multiprocessing

            ctx = multiprocessing.get_context()
        return mode, max(1, workers), ctx

    def _prepare_tokens(self, cancel, mode, ctx):
        """Resolve the consumer-facing and worker-facing cancellation tokens.

        In process mode the workers can only observe a multiprocessing-
        backed event.  A caller-supplied thread-backed token is therefore
        *bridged*: a daemon thread polls it and forwards the cancellation
        to a process-backed worker token (a fork-inherited copy of a
        threading event would silently never propagate, and spawn could not
        pickle it at all).  Returns ``(cancel, worker_token, stop_bridge)``;
        ``stop_bridge`` is ``None`` when no bridge thread was started.
        """
        if mode != PROCESSES:
            if cancel is None:
                cancel = CancellationToken()
            return cancel, cancel, None
        if cancel is None:
            token = process_token(ctx)
            return token, token, None
        if getattr(cancel, "is_process_backed", None) and cancel.is_process_backed():
            return cancel, cancel, None
        worker_token = process_token(ctx)
        stop_flag = threading.Event()

        def bridge() -> None:
            while not stop_flag.is_set():
                if cancel.cancelled():
                    worker_token.cancel()
                    return
                time.sleep(0.01)

        threading.Thread(target=bridge, daemon=True).start()
        return cancel, worker_token, stop_flag.set

    @staticmethod
    def _processes_usable(jobs: Sequence) -> bool:
        if not _processes_available():
            return False
        probe = jobs[0]
        if getattr(probe, "cancel", None) is not None:
            # Multiprocessing events only pickle while a process is being
            # spawned (inheritance), so a job-level token would fail this
            # probe even though the real Process() hand-off transports it
            # fine — probe the job without it.
            import dataclasses

            try:
                probe = dataclasses.replace(probe, cancel=None)
            except Exception:
                pass
        try:
            # Probe one representative job (jobs are homogeneous CNF
            # records; pickling all of them would serialise every CNF twice).
            pickle.dumps(probe)
        except Exception:
            return False
        return True

    # ------------------------------------------------------------------
    # Streaming execution (as_completed semantics)
    # ------------------------------------------------------------------
    def stream(
        self,
        jobs: Sequence,
        cancel: Optional[CancellationToken] = None,
        validate: bool = True,
    ) -> Iterator[Completion]:
        """Yield a :class:`Completion` per job, in completion order.

        ``cancel`` is shared with every job's budget; setting it (e.g. from
        the consumer of this iterator) stops running jobs cooperatively and
        skips jobs not yet started, which then stream back as cancelled
        placeholders.
        """
        jobs = list(jobs)
        if validate:
            for job in jobs:
                job.validate()
        if not jobs:
            return
        mode, workers, ctx = self._plan(jobs)
        cancel, worker_token, stop_bridge = self._prepare_tokens(cancel, mode, ctx)
        started = time.perf_counter()
        try:
            for completion in self._stream(jobs, worker_token, mode, workers, ctx):
                completion.wall_seconds = time.perf_counter() - started
                yield completion
        finally:
            if stop_bridge is not None:
                stop_bridge()

    def _stream(self, jobs, token, mode, workers, ctx) -> Iterator[Completion]:
        if mode == PROCESSES:
            return self._process_stream(jobs, token, workers, ctx)
        if mode == THREADS:
            return self._thread_stream(jobs, token, workers)
        return self._inline_stream(jobs, token)

    def _inline_stream(self, jobs, token) -> Iterator[Completion]:
        for index, job in enumerate(jobs):
            if token.cancelled():
                yield Completion(index, job, _cancelled_result(job), cancelled=True)
                continue
            try:
                result = execute_job(job, cancel=token)
            except Exception as exc:
                yield Completion(
                    index,
                    job,
                    None,
                    error="%s: %s" % (type(exc).__name__, exc),
                    error_kind=ERROR_CRASH,
                    exception=exc,
                )
                continue
            yield Completion(index, job, result)

    def _thread_stream(self, jobs, token, workers) -> Iterator[Completion]:
        done: "queue_module.Queue" = queue_module.Queue()
        pending: "queue_module.Queue" = queue_module.Queue()
        for index in range(len(jobs)):
            pending.put(index)

        def work() -> None:
            while True:
                try:
                    index = pending.get_nowait()
                except queue_module.Empty:
                    return
                if token.cancelled():
                    done.put((index, _cancelled_result(jobs[index]), None, "skip"))
                    continue
                try:
                    result = execute_job(jobs[index], cancel=token)
                    done.put((index, result, None, None))
                except Exception as exc:
                    done.put((index, None, exc, ERROR_CRASH))

        threads = [
            threading.Thread(target=work, daemon=True)
            for _ in range(min(workers, len(jobs)))
        ]
        for thread in threads:
            thread.start()
        for _ in range(len(jobs)):
            index, result, error, kind = done.get()
            message, exception = _error_fields(error)
            yield Completion(
                index,
                jobs[index],
                result,
                cancelled=kind == "skip",
                error=message,
                error_kind=kind if error is not None else None,
                exception=exception,
            )
        for thread in threads:
            thread.join()

    def _process_stream(self, jobs, token, workers, ctx) -> Iterator[Completion]:
        out_queue = ctx.Queue()
        running: Dict[int, object] = {}
        dead_strikes: Dict[int, int] = {}
        not_started: List[int] = list(range(len(jobs)))
        cancel_deadline: Optional[float] = None
        while running or not_started:
            if token.cancelled() and not_started:
                # The race is decided: report the unstarted jobs as
                # cancelled instead of spawning them.
                for index in not_started:
                    yield Completion(
                        index, jobs[index], _cancelled_result(jobs[index]),
                        cancelled=True,
                    )
                not_started = []
                if not running:
                    break
            while not_started and len(running) < workers and not token.cancelled():
                index = not_started.pop(0)
                proc = ctx.Process(
                    target=_process_worker,
                    args=(index, jobs[index], token, out_queue),
                    daemon=True,
                )
                proc.start()
                running[index] = proc
            if not running:
                continue
            try:
                index, result, error, kind = out_queue.get(timeout=0.05)
            except queue_module.Empty:
                now = time.monotonic()
                if token.cancelled():
                    if cancel_deadline is None:
                        cancel_deadline = now + self.join_grace
                    elif now > cancel_deadline:
                        # Workers that ignore the token (non-cancellable
                        # backends) are terminated after the grace period.
                        for index, proc in sorted(running.items()):
                            proc.terminate()
                            proc.join()
                            yield Completion(
                                index,
                                jobs[index],
                                _cancelled_result(jobs[index]),
                                cancelled=True,
                            )
                        running.clear()
                        continue
                # Reap workers that died without reporting (after a few
                # empty polls, so an already-queued result is not mistaken
                # for a crash).
                for index, proc in sorted(running.items()):
                    if proc.is_alive():
                        continue
                    dead_strikes[index] = dead_strikes.get(index, 0) + 1
                    if dead_strikes[index] >= 3:
                        proc.join()
                        del running[index]
                        yield Completion(
                            index,
                            jobs[index],
                            None,
                            error="worker process died without a result "
                            "(exitcode %r)" % (proc.exitcode,),
                            error_kind=ERROR_CRASH,
                        )
                continue
            proc = running.pop(index, None)
            if proc is not None:
                proc.join()
            message, exception = _error_fields(error)
            yield Completion(
                index,
                jobs[index],
                result,
                error=message,
                error_kind=kind if error is not None else None,
                exception=exception,
            )

    # ------------------------------------------------------------------
    # High-level entry points
    # ------------------------------------------------------------------
    def race(
        self,
        jobs: Sequence,
        definitive: Optional[Callable[[SolverResult], bool]] = None,
        cancel: Optional[CancellationToken] = None,
        validate: bool = True,
    ) -> RaceOutcome:
        """Race jobs; the first definitive answer wins, losers are cancelled.

        ``definitive`` decides which results end the race (default: any
        ``sat`` or ``unsat`` answer).  Erroring strategies never win; they
        are recorded on their completion and the race continues.  When no
        definitive answer arrives every job runs to completion, exactly like
        :meth:`run_all`.
        """
        jobs = list(jobs)
        if validate:
            for job in jobs:
                job.validate()
        definitive = definitive or _definitive_default
        if not jobs:
            return RaceOutcome(
                jobs=[], mode=INLINE, workers=0, winner_index=None,
                completions=[], results=[], wall_seconds=0.0,
            )
        mode, workers, ctx = self._plan(jobs)
        cancel, worker_token, stop_bridge = self._prepare_tokens(cancel, mode, ctx)
        started = time.perf_counter()
        winner_index: Optional[int] = None
        completions: List[Completion] = []
        results: List[Optional[SolverResult]] = [None] * len(jobs)
        try:
            for completion in self._stream(jobs, worker_token, mode, workers, ctx):
                completion.wall_seconds = time.perf_counter() - started
                if (
                    winner_index is not None
                    and not completion.cancelled
                    and completion.result is not None
                    and completion.result.is_unknown
                ):
                    # An unknown that arrives after the race is decided is a
                    # loser that stopped at its budget hook.
                    completion.cancelled = True
                completions.append(completion)
                if completion.result is not None:
                    results[completion.index] = completion.result
                if (
                    winner_index is None
                    and completion.error is None
                    and not completion.cancelled
                    and completion.result is not None
                    and definitive(completion.result)
                ):
                    winner_index = completion.index
                    cancel.cancel()
                    if worker_token is not cancel:
                        worker_token.cancel()
        finally:
            if stop_bridge is not None:
                stop_bridge()
        return RaceOutcome(
            jobs=jobs,
            mode=mode,
            workers=workers,
            winner_index=winner_index,
            completions=completions,
            results=results,
            wall_seconds=time.perf_counter() - started,
        )

    def run_all(self, jobs: Sequence, validate: bool = True) -> List[SolverResult]:
        """Run every job to completion; results in job order.

        This is the executor shape :func:`repro.sat.solve_batch` runs on: no
        early termination, deterministic per-job results, worker crashes
        propagate.  Jobs whose backend exists only in the parent process
        (runtime registrations invisible to workers) are transparently
        re-run in-process.
        """
        jobs = list(jobs)
        if validate:
            for job in jobs:
                job.validate()
        if not jobs:
            return []
        results: List[Optional[SolverResult]] = [None] * len(jobs)
        retry_inline: List[int] = []
        for completion in self.stream(jobs, validate=False):
            if completion.error is not None:
                if completion.error_kind == ERROR_BACKEND:
                    retry_inline.append(completion.index)
                elif completion.exception is not None:
                    # Preserve the original exception type (a deterministic
                    # solver error propagates exactly as it would have
                    # in-process).
                    raise completion.exception
                else:
                    raise RuntimeError(
                        "batch job %d (%s) failed: %s"
                        % (
                            completion.index,
                            getattr(completion.job, "solver", "?"),
                            completion.error,
                        )
                    )
            else:
                results[completion.index] = completion.result
        for index in retry_inline:
            results[index] = execute_job(jobs[index])
        return results  # type: ignore[return-value]
