"""Persistent warm worker pool: the execution substrate of the service tier.

PR 3's :class:`~repro.exec.executor.PortfolioExecutor` spawned one worker
*process per job* and threw it away, which also threw away PR 2's warm
incremental solver state between requests.  This module replaces that with a
:class:`WorkerPool` whose workers **live across races**:

* workers are spawned once (per pool) and receive jobs over a queue
  protocol — ``(ticket id, job, CNF fingerprint, payload-or-None,
  warm key)`` in, ``(ticket id, worker id, result, error, kind, warm)``
  out;
* each worker keeps **warm incremental CDCL engines** keyed by the CNF's
  content fingerprint (:func:`repro.pipeline.fingerprint.cnf_digest`) plus
  the solver configuration, so same-CNF assumption jobs skip both the
  re-shipping of the clause database and the engine re-initialisation, and
  inherit learned clauses / VSIDS activities / saved phases from earlier
  jobs — *including jobs submitted by earlier races*;
* the parent mirrors each worker's CNF LRU cache, so a job whose CNF a
  worker already holds ships only the fingerprint (``ship_skipped`` in
  :meth:`WorkerPool.stats`);
* cancellation is bridged **per job instead of per process**: the parent's
  collector thread polls the caller-side tokens (race-wide and per-job) and
  forwards a cancellation to the one worker running that job through a
  shared cancel cell; queued jobs are retired parent-side without ever
  reaching a worker;
* a worker that ignores cancellation past the grace period (non-cancellable
  backends such as ``bdd``) is terminated and **respawned**, so the pool
  survives it; a worker that *dies* mid-job gets the job **requeued** on
  another worker (bounded attempts) instead of losing it;
* :meth:`WorkerPool.shutdown` drains: no new work is accepted, in-flight
  jobs finish, workers exit on a sentinel and are joined.

Execution modes mirror the executor's (``processes`` / ``threads`` /
``inline``).  Thread workers are persistent daemon threads sharing the
parent memory (no shipping, direct token objects); the inline pool executes
in the calling thread with a pool-level warm-engine cache guarded by a lock,
which is the degenerate single-slot shape used in sandboxes and under
``REPRO_BATCH_WORKERS=0``.

Shared pools: :func:`get_shared_pool` hands out one long-lived pool per
mode; every :class:`PortfolioExecutor`, :func:`repro.sat.solve_batch` call
and the verification service scheduler route through them, which is what
makes warm state accumulate across requests.  Solver *verdicts* stay
deterministic; per-run statistics (and which model a ``sat`` answer
reports) may benefit from state learned by earlier same-fingerprint jobs.

Jobs whose backend was registered *after* a pool's workers were spawned
(runtime test backends) cannot resolve inside a worker process; the pool
runs them on a parent-side thread lane instead, preserving the executor's
old fork-time-registration semantics.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import queue as queue_module
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..sat.registry import get_backend, registered_backends
from ..sat.types import UNKNOWN, SolverResult
from .cancellation import CancellationToken, CompositeToken

#: Execution-mode names (shared with :mod:`repro.exec.executor`).
PROCESSES = "processes"
THREADS = "threads"
INLINE = "inline"

#: Worker-error kinds carried on :class:`Completion`.
ERROR_BACKEND = "backend"
ERROR_CRASH = "error"

#: Cancel-cell sentinel: cancel whatever the worker is running (shutdown).
_CANCEL_ALL = -2
#: Cancel-cell sentinel: nothing cancelled.
_CANCEL_NONE = -1

#: How many times a job whose worker died is requeued before it errors.
MAX_ATTEMPTS = 3

#: Per-worker cache caps (parent mirrors the CNF cap deterministically).
ENGINE_CACHE_ENV = "REPRO_POOL_ENGINES"
CNF_CACHE_ENV = "REPRO_POOL_CNFS"
DEFAULT_ENGINE_CAP = 16
DEFAULT_CNF_CAP = 32


def _env_cap(name: str, default: int) -> int:
    try:
        value = int(os.environ.get(name, ""))
    except ValueError:
        return default
    return value if value > 0 else default


def execute_job(job, cancel=None) -> SolverResult:
    """Run one :class:`~repro.sat.batch.SolveJob` to completion.

    The job's budget is created *here* (so wall-clock limits are measured
    where the work happens) and wired to the cancellation token, which the
    solver polls through its existing budget hooks.
    """
    backend = get_backend(job.solver)
    started = time.perf_counter()
    result = backend.solve(
        job.cnf,
        seed=job.seed,
        budget=job.budget(cancel=cancel),
        assumptions=job.assumptions,
        **job.options,
    )
    if not result.stats.time_seconds:
        result.stats.time_seconds = time.perf_counter() - started
    return result


def _cancelled_result(job) -> SolverResult:
    """Placeholder result for a job cancelled before (or instead of) running."""
    return SolverResult(UNKNOWN, solver_name=job.solver)


@dataclass
class Completion:
    """One streamed event: job ``index`` finished with ``result``.

    ``cancelled`` marks results that arrived after the race was decided
    (or jobs skipped entirely once a token was set); ``error`` carries a
    worker-side failure message with ``error_kind`` distinguishing a missing
    backend registration (``"backend"``) from a crash (``"error"``).
    ``warm`` is True when the job was discharged on a warm incremental
    engine retained from an earlier job with the same CNF fingerprint.
    """

    index: int
    job: object
    result: Optional[SolverResult]
    wall_seconds: float = 0.0
    cancelled: bool = False
    error: Optional[str] = None
    error_kind: Optional[str] = None
    #: the original exception object, when it survived the worker boundary
    #: (always for inline/thread modes; for process workers when picklable).
    exception: Optional[BaseException] = None
    #: served by a warm engine kept from an earlier same-fingerprint job.
    warm: bool = False
    #: pool worker that ran the job (None for inline / parent-lane jobs).
    worker: Optional[int] = None


def _error_fields(error) -> Tuple[Optional[str], Optional[BaseException]]:
    """Normalise a worker error (exception object or string) for Completion."""
    if error is None:
        return None, None
    if isinstance(error, BaseException):
        return "%s: %s" % (type(error).__name__, error), error
    return str(error), None


def warm_key_for(job) -> Optional[Tuple]:
    """The warm-engine key of a job, or ``None`` for cold (one-shot) jobs.

    Only assumption jobs on incremental, assumption-capable backends are
    warm-routable: their clause database is identical across the family, so
    one engine can discharge all of them (and any later family with the
    same fingerprint) while keeping its learned state.
    """
    if not job.assumptions:
        return None
    backend = get_backend(job.solver)
    if not (backend.incremental and backend.assumptions):
        return None
    from ..pipeline.fingerprint import cnf_digest

    return (
        cnf_digest(job.cnf),
        job.solver,
        job.seed,
        tuple(sorted(job.options.items())),
    )


class _CellToken:
    """Worker-side cancellation token reading a shared per-worker cell.

    The parent cancels ticket ``t`` running on worker ``w`` by storing
    ``t`` into ``w``'s cell; :data:`_CANCEL_ALL` cancels whatever runs.
    This is the message-based, per-job replacement for the per-process
    multiprocessing events the old executor inherited at spawn time.
    """

    def __init__(self, cell, ticket_id: int) -> None:
        self._cell = cell
        self._ticket_id = ticket_id

    def cancelled(self) -> bool:
        value = self._cell.value
        return value == self._ticket_id or value == _CANCEL_ALL


# ----------------------------------------------------------------------
# Worker bodies
# ----------------------------------------------------------------------
def _serve_one(job, cnf, token, warm_key, engines: "OrderedDict", engine_cap,
               shared_in=None):
    """Execute one job inside a worker, reusing a warm engine when keyed.

    Returns ``(result, warm, shared_out)``.  ``shared_in`` is the clause
    piggyback of process-mode dispatches — ``(budget, frames)`` drained
    from the parent-side hub endpoint — and ``shared_out`` carries the
    engine's exports back (``None`` in parent-memory modes, where engines
    talk to the hub directly).
    """
    import dataclasses

    from .exchange import ambient_relay, relay_attach, sync_engine_exchange

    job = dataclasses.replace(job, cnf=cnf, cancel=None)
    if warm_key is None:
        if shared_in is not None:
            with ambient_relay(shared_in[0], shared_in[1]) as holder:
                result = execute_job(job, cancel=token)
            relay = holder.endpoint
            return result, False, (relay.take_exports() if relay else None)
        return execute_job(job, cancel=token), False, None
    engine = engines.get(warm_key)
    warm = engine is not None
    if engine is None:
        backend = get_backend(job.solver)
        engine = backend.factory(cnf, job.seed, dict(job.options))
        engines[warm_key] = engine
        while len(engines) > engine_cap:
            engines.popitem(last=False)
    else:
        engines.move_to_end(warm_key)
    # Clause exchange: process workers get piggybacked frames via shared_in
    # and return their exports; thread/inline engines attach to (or detach
    # from) the fingerprint's in-memory hub according to the current
    # activation, so warm engines stop importing once a sharing race ends.
    relay = None
    if shared_in is not None:
        relay = relay_attach(engine, shared_in[0], shared_in[1])
    else:
        sync_engine_exchange(engine, warm_key[0])
    started = time.perf_counter()
    result = engine.solve(job.budget(cancel=token), assumptions=job.assumptions)
    if not result.stats.time_seconds:
        result.stats.time_seconds = time.perf_counter() - started
    shared_out = relay.take_exports() if relay is not None else None
    return result, warm, (shared_out or None)


def _pool_worker_main(
    worker_id, in_queue, out_queue, cancel_cell, engine_cap, cnf_cap
):  # pragma: no cover - runs in a child process
    """Body of one persistent worker process.

    The CNF cache below is the worker half of a parent-mirrored LRU: the
    parent applies the exact same touch/insert/evict sequence (messages are
    handled in send order), which is how it knows when a fingerprint can be
    sent without its payload.
    """
    engines: "OrderedDict" = OrderedDict()
    cnfs: "OrderedDict" = OrderedDict()
    while True:
        msg = in_queue.get()
        if msg is None:
            return
        # Messages arrive pre-pickled: the parent serialises synchronously
        # in send() so an unpicklable job raises a visible error at
        # dispatch instead of being dropped by the queue's feeder thread.
        ticket_id, job, fingerprint, payload, warm_key, shared_in = (
            pickle.loads(msg)
        )
        warm = False
        try:
            if payload is not None:
                cnfs[fingerprint] = payload
                while len(cnfs) > cnf_cap:
                    cnfs.popitem(last=False)
            elif fingerprint in cnfs:
                cnfs.move_to_end(fingerprint)
            cnf = cnfs.get(fingerprint)
            if cnf is None:
                out_queue.put(
                    (ticket_id, worker_id, None,
                     "worker CNF cache desynchronised for %s" % fingerprint[:12],
                     ERROR_CRASH, False, None)
                )
                continue
            try:
                get_backend(job.solver)
            except ValueError as exc:
                # Backend registered only in the parent after this worker
                # was spawned: report so the parent reroutes (thread lane).
                out_queue.put(
                    (ticket_id, worker_id, None, str(exc), ERROR_BACKEND,
                     False, None)
                )
                continue
            token = _CellToken(cancel_cell, ticket_id)
            result, warm, shared_out = _serve_one(
                job, cnf, token, warm_key, engines, engine_cap,
                shared_in=shared_in,
            )
            out_queue.put(
                (ticket_id, worker_id, result, None, None, warm, shared_out)
            )
        except Exception as exc:
            try:
                # Ship the exception object itself so the parent can
                # re-raise with the original type — but only after a local
                # pickle ROUND-TRIP: an exception that pickles but fails to
                # unpickle (custom __init__ signature) would otherwise be
                # consumed from the pipe parent-side and lost, stranding
                # the ticket forever.
                pickle.loads(pickle.dumps(exc))
                out_queue.put(
                    (ticket_id, worker_id, None, exc, ERROR_CRASH, warm, None)
                )
            except Exception:
                # Degrade to its rendering when it does not round-trip.
                out_queue.put(
                    (ticket_id, worker_id, None,
                     "%s: %s" % (type(exc).__name__, exc), ERROR_CRASH, warm,
                     None)
                )


_PROCESS_PROBE: Optional[bool] = None


def processes_available() -> bool:
    """One-time probe: can this environment spawn worker processes at all?"""
    global _PROCESS_PROBE
    if _PROCESS_PROBE is None:
        try:
            import multiprocessing

            ctx = multiprocessing.get_context()
            proc = ctx.Process(target=_probe_target, daemon=True)
            proc.start()
            proc.join(10)
            _PROCESS_PROBE = proc.exitcode == 0
        except Exception:
            _PROCESS_PROBE = False
    return _PROCESS_PROBE


def _probe_target() -> None:  # pragma: no cover - runs in a child process
    pass


# ----------------------------------------------------------------------
# Parent-side bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _Stream:
    """One ``stream()`` call: completion routing and its slot budget."""

    token: CancellationToken
    slots: int
    join_grace: float
    completions: "queue_module.Queue" = field(default_factory=queue_module.Queue)
    outstanding: int = 0
    running: int = 0


@dataclass
class _Ticket:
    """One submitted job travelling through the pool."""

    id: int
    index: int
    job: object
    stream: _Stream
    fingerprint: Optional[str]
    warm_key: Optional[Tuple]
    attempts: int = 0
    signalled: bool = False
    grace_deadline: Optional[float] = None

    def watched_tokens(self) -> List:
        tokens = [self.stream.token]
        job_token = getattr(self.job, "cancel", None)
        if job_token is not None:
            tokens.append(job_token)
        return tokens

    def cancel_requested(self) -> bool:
        return any(token.cancelled() for token in self.watched_tokens())


class _ProcessWorker:
    """Parent handle of one persistent worker process."""

    def __init__(self, worker_id: int, ctx, out_queue, engine_cap, cnf_cap):
        self.id = worker_id
        self.in_queue = ctx.Queue()
        self.cancel_cell = ctx.Value("q", _CANCEL_NONE, lock=False)
        #: parent mirror of the worker's CNF LRU (fingerprint order).
        self.cnf_mirror: "OrderedDict" = OrderedDict()
        self.cnf_cap = cnf_cap
        #: parent mirror of the worker's warm-engine LRU (see
        #: WorkerPool._touch_engine_mirror).
        self.engine_mirror: "OrderedDict" = OrderedDict()
        #: parent-side hub endpoints, one per fingerprint this worker has
        #: exchanged clauses on (the worker's half lives across the queue).
        self.exchange_endpoints: Dict[str, object] = {}
        self.process = ctx.Process(
            target=_pool_worker_main,
            args=(worker_id, self.in_queue, out_queue, self.cancel_cell,
                  engine_cap, cnf_cap),
            daemon=True,
        )
        self.process.start()
        self.dead_strikes = 0

    def send(self, ticket: _Ticket) -> bool:
        """Ship one job; returns True when the CNF payload was skipped.

        The message is serialised HERE (synchronously): mp.Queue's feeder
        thread would silently drop an unpicklable message, hanging the
        stream; this way the error surfaces at dispatch and the ticket is
        failed visibly (see WorkerPool._assign).  The mirror is committed
        only after serialisation succeeded, so a failed send never
        desynchronises it from the worker's cache.
        """
        import dataclasses

        skipped = ticket.fingerprint in self.cnf_mirror
        payload = None if skipped else ticket.job.cnf
        job = dataclasses.replace(ticket.job, cnf=None, cancel=None)
        message = pickle.dumps(
            (ticket.id, job, ticket.fingerprint, payload, ticket.warm_key,
             self._shared_in(ticket))
        )
        if skipped:
            self.cnf_mirror.move_to_end(ticket.fingerprint)
        else:
            self.cnf_mirror[ticket.fingerprint] = True
            while len(self.cnf_mirror) > self.cnf_cap:
                self.cnf_mirror.popitem(last=False)
        self.in_queue.put(message)
        return skipped

    def _shared_in(self, ticket: _Ticket):
        """The clause piggyback for a dispatch: ``(budget, frames)`` or None.

        Frames come from this worker's parent-side endpoint on the
        fingerprint's hub, so the worker only receives clauses exported by
        *other* racers (its own exports flow back via the result tuple).
        """
        from .exchange import hub_for, sharing_budget

        budget = sharing_budget(ticket.fingerprint)
        if budget is None:
            return None
        endpoint = self.exchange_endpoints.get(ticket.fingerprint)
        if endpoint is None:
            endpoint = hub_for(ticket.fingerprint).endpoint()
            self.exchange_endpoints[ticket.fingerprint] = endpoint
        return (budget, endpoint.drain())

    def absorb_exports(self, fingerprint: Optional[str], frames) -> None:
        """Publish a result's piggybacked exports into the fingerprint hub."""
        if not frames or not fingerprint:
            return
        endpoint = self.exchange_endpoints.get(fingerprint)
        if endpoint is not None:
            endpoint.publish(frames)

    def signal_cancel(self, ticket_id: int) -> None:
        self.cancel_cell.value = ticket_id

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self) -> None:
        try:
            self.in_queue.put(None)
        except Exception:
            pass

    def terminate(self) -> None:
        try:
            self.process.terminate()
            self.process.join(5)
        except Exception:
            pass

    def join(self, timeout: float) -> None:
        self.process.join(timeout)
        if self.process.is_alive():
            self.terminate()


class _ThreadWorker:
    """Parent handle of one persistent worker thread.

    Thread workers share the parent memory: jobs carry their CNF and token
    objects directly, the warm-engine cache is thread-local to the worker
    (one job in flight per worker, so no engine is ever shared), and a
    worker cannot be terminated — non-cancellable backends simply run to
    their budget, exactly like the old thread stream.
    """

    def __init__(self, worker_id: int, out_queue, engine_cap):
        self.id = worker_id
        self.in_queue: "queue_module.Queue" = queue_module.Queue()
        self.engines: "OrderedDict" = OrderedDict()
        self.engine_cap = engine_cap
        #: parent mirror of :attr:`engines` (shared LRU rule; accessed only
        #: under the pool lock so the dispatcher never races the worker).
        self.engine_mirror: "OrderedDict" = OrderedDict()
        self.out_queue = out_queue
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        self.dead_strikes = 0

    def _run(self) -> None:
        while True:
            msg = self.in_queue.get()
            if msg is None:
                return
            ticket_id, job, token, warm_key = msg
            warm = False
            try:
                result, warm, _shared = _serve_one(
                    job, job.cnf, token, warm_key, self.engines, self.engine_cap
                )
                self.out_queue.put(
                    (ticket_id, self.id, result, None, None, warm, None)
                )
            except Exception as exc:
                self.out_queue.put(
                    (ticket_id, self.id, None, exc, ERROR_CRASH, warm, None)
                )

    def send(self, ticket: _Ticket, token) -> bool:
        self.in_queue.put((ticket.id, ticket.job, token, ticket.warm_key))
        return True  # nothing is ever shipped across a process boundary

    def signal_cancel(self, ticket_id: int) -> None:
        # Thread tickets are cancelled through their token objects directly
        # (see WorkerPool._signal_cancel); nothing to do at the worker.
        pass

    def alive(self) -> bool:
        return self.thread.is_alive()

    def stop(self) -> None:
        self.in_queue.put(None)

    def terminate(self) -> None:  # pragma: no cover - threads cannot be killed
        pass

    def join(self, timeout: float) -> None:
        self.thread.join(timeout)


class WorkerPool:
    """Persistent pool of solver workers with warm incremental engines.

    ``mode`` is ``"processes"``, ``"threads"`` or ``"inline"`` (default:
    processes when the environment can spawn them, else threads).  Workers
    are spawned lazily and the pool grows up to the largest concurrently
    requested slot count.  One pool serves any number of concurrent
    :meth:`stream` calls (the service scheduler's threads all share one),
    each limited to its own ``slots`` running jobs.

    ``warm_engines=False`` disables engine retention (every job solves
    cold) — the per-call-spawn baseline the throughput benchmark compares
    against.
    """

    def __init__(
        self,
        mode: Optional[str] = None,
        join_grace: float = 10.0,
        warm_engines: bool = True,
        engine_cap: Optional[int] = None,
        cnf_cap: Optional[int] = None,
    ) -> None:
        if mode is None:
            mode = PROCESSES if processes_available() else THREADS
        if mode not in (PROCESSES, THREADS, INLINE):
            raise ValueError(
                "unknown pool mode %r; expected one of %s"
                % (mode, ", ".join((PROCESSES, THREADS, INLINE)))
            )
        if mode == PROCESSES and not processes_available():
            mode = THREADS
        self.mode = mode
        self.join_grace = join_grace
        self.warm_engines = warm_engines
        self.engine_cap = engine_cap or _env_cap(ENGINE_CACHE_ENV, DEFAULT_ENGINE_CAP)
        self.cnf_cap = cnf_cap or _env_cap(CNF_CACHE_ENV, DEFAULT_CNF_CAP)

        self._lock = threading.RLock()
        self._closed = False
        self._ticket_ids = itertools.count(1)
        self._worker_ids = itertools.count(0)
        self._workers: Dict[int, object] = {}
        self._idle: List[int] = []
        self._pending: List[_Ticket] = []
        self._running: Dict[int, _Ticket] = {}  # worker id -> ticket
        self._thread_tokens: Dict[int, CancellationToken] = {}  # ticket id
        self._pins: Dict[Tuple, int] = {}  # warm key -> worker id
        self._known_backends = frozenset(registered_backends())
        self._collector: Optional[threading.Thread] = None
        self._wake = threading.Event()
        #: inline-mode warm engines, serialised by their own lock so a
        #: long-running inline solve never blocks ``stats()``/``healthz``.
        self._inline_lock = threading.RLock()
        self._inline_engines: "OrderedDict" = OrderedDict()
        self._ctx = None
        self._out_queue = None
        self._counters = {
            "dispatched": 0,
            "completed": 0,
            "warm_hits": 0,
            "cnf_shipped": 0,
            "ship_skipped": 0,
            "requeued": 0,
            "respawned": 0,
            "parent_lane": 0,
            "cancelled": 0,
        }
        # Aggregate kernel counters across every completed solve, surfaced
        # by stats() (and therefore the service /healthz endpoint).
        self._kernel = {
            "propagations": 0,
            "conflicts": 0,
            "decisions": 0,
            "db_reductions": 0,
            "solve_seconds": 0.0,
            "exported_clauses": 0,
            "imported_clauses": 0,
            "useful_imports": 0,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def stats(self) -> Dict[str, object]:
        """Pool-level counters (warm hits, shipping, respawns, ...)."""
        with self._lock:
            stats: Dict[str, object] = dict(self._counters)
            stats["mode"] = self.mode
            stats["workers"] = len(self._workers)
            stats["pending"] = len(self._pending)
            stats["running"] = len(self._running)
            stats["pinned_keys"] = len(self._pins)
            kernel = dict(self._kernel)
            seconds = kernel["solve_seconds"]
            kernel["propagations_per_second"] = (
                round(kernel["propagations"] / seconds, 1) if seconds > 0 else 0.0
            )
            kernel["solve_seconds"] = round(seconds, 4)
            stats["kernel"] = kernel
            node = os.environ.get("REPRO_NODE_ID")
            if node:
                stats["node"] = node
            return stats

    def _absorb_kernel_stats(self, result) -> None:
        """Fold one completed solve's kernel counters into the pool totals.

        Caller holds ``self._lock``.  ``result`` may be ``None`` (crash) or
        lack stats (non-solver payloads); those contribute nothing.
        """
        stats = getattr(result, "stats", None)
        if stats is None:
            return
        kernel = self._kernel
        kernel["propagations"] += getattr(stats, "propagations", 0)
        kernel["conflicts"] += getattr(stats, "conflicts", 0)
        kernel["decisions"] += getattr(stats, "decisions", 0)
        kernel["db_reductions"] += getattr(stats, "db_reductions", 0)
        kernel["solve_seconds"] += getattr(stats, "time_seconds", 0.0)
        kernel["exported_clauses"] += getattr(stats, "exported_clauses", 0)
        kernel["imported_clauses"] += getattr(stats, "imported_clauses", 0)
        kernel["useful_imports"] += getattr(stats, "useful_imports", 0)

    # ------------------------------------------------------------------
    # Worker management
    # ------------------------------------------------------------------
    def _out(self):
        if self.mode == PROCESSES:
            if self._out_queue is None:
                import multiprocessing

                self._ctx = multiprocessing.get_context()
                self._out_queue = self._ctx.Queue()
        else:
            if self._out_queue is None:
                self._out_queue = queue_module.Queue()
        return self._out_queue

    def _spawn_worker(self):
        worker_id = next(self._worker_ids)
        if self.mode == PROCESSES:
            worker = _ProcessWorker(
                worker_id, self._ctx, self._out(), self.engine_cap, self.cnf_cap
            )
        else:
            worker = _ThreadWorker(worker_id, self._out(), self.engine_cap)
        self._workers[worker_id] = worker
        self._idle.append(worker_id)
        # Workers spawned later still only know the registry as of *their*
        # fork; keeping the pool-level snapshot at first spawn is the
        # conservative intersection.
        return worker

    def _ensure_workers(self, requested: int) -> None:
        """Grow the pool up to ``requested`` workers (never shrinks)."""
        if self.mode == INLINE:
            return
        self._out()
        while len(self._workers) < requested:
            self._spawn_worker()
        if self._collector is None:
            self._collector = threading.Thread(
                target=self._collect_loop, daemon=True
            )
            self._collector.start()

    # ------------------------------------------------------------------
    # Submission / streaming
    # ------------------------------------------------------------------
    def stream(
        self,
        jobs: Sequence,
        cancel: Optional[CancellationToken] = None,
        slots: Optional[int] = None,
        validate: bool = True,
        join_grace: Optional[float] = None,
    ) -> Iterator[Completion]:
        """Yield one :class:`Completion` per job, in completion order.

        ``slots`` bounds this stream's concurrently running jobs (the pool
        itself may be larger, serving other streams).  ``cancel`` stops
        running jobs cooperatively (bridged per job) and retires queued
        jobs parent-side; they stream back as cancelled placeholders.
        """
        jobs = list(jobs)
        if validate:
            for job in jobs:
                job.validate()
        if not jobs:
            return
        if cancel is None:
            cancel = CancellationToken()
        started = time.perf_counter()
        if self.mode == INLINE:
            for completion in self._stream_inline(jobs, cancel):
                completion.wall_seconds = time.perf_counter() - started
                yield completion
            return
        slots = max(1, slots if slots is not None else len(jobs))
        handle = _Stream(
            token=cancel,
            slots=slots,
            join_grace=self.join_grace if join_grace is None else join_grace,
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is shut down")
            self._ensure_workers(min(slots, len(jobs)))
            for index, job in enumerate(jobs):
                ticket = _Ticket(
                    id=next(self._ticket_ids),
                    index=index,
                    job=job,
                    stream=handle,
                    fingerprint=self._fingerprint(job),
                    warm_key=warm_key_for(job) if self.warm_engines else None,
                )
                handle.outstanding += 1
                self._pending.append(ticket)
            self._dispatch_locked()
        self._wake.set()
        delivered = 0
        try:
            while delivered < len(jobs):
                completion = handle.completions.get()
                completion.wall_seconds = time.perf_counter() - started
                delivered += 1
                yield completion
        finally:
            if delivered < len(jobs):
                # Consumer abandoned the stream: retire its queued jobs so
                # they never occupy a worker.
                cancel.cancel()
                self._wake.set()

    def run_all(self, jobs: Sequence, validate: bool = True) -> List[SolverResult]:
        """Run every job to completion; results in job order (no early exit)."""
        jobs = list(jobs)
        results: List[Optional[SolverResult]] = [None] * len(jobs)
        for completion in self.stream(jobs, validate=validate):
            if completion.error is not None:
                if completion.exception is not None:
                    raise completion.exception
                raise RuntimeError(
                    "pool job %d (%s) failed: %s"
                    % (completion.index,
                       getattr(completion.job, "solver", "?"),
                       completion.error)
                )
            results[completion.index] = completion.result
        return results  # type: ignore[return-value]

    def _fingerprint(self, job) -> Optional[str]:
        if self.mode != PROCESSES:
            return None
        from ..pipeline.fingerprint import cnf_digest

        return cnf_digest(job.cnf)

    # ------------------------------------------------------------------
    # Inline execution (no workers; warm engines live on the pool)
    # ------------------------------------------------------------------
    def _stream_inline(self, jobs, cancel) -> Iterator[Completion]:
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        for index, job in enumerate(jobs):
            job_token = getattr(job, "cancel", None)
            token = cancel if job_token is None else CompositeToken(
                cancel, job_token
            )
            if token.cancelled():
                with self._lock:
                    self._counters["cancelled"] += 1
                yield Completion(index, job, _cancelled_result(job), cancelled=True)
                continue
            warm_key = warm_key_for(job) if self.warm_engines else None
            try:
                # The inline lock serialises engine access: concurrent
                # inline streams (service scheduler threads) must not drive
                # one warm engine simultaneously.  The pool lock itself is
                # only taken for counters, so stats() stays responsive.
                with self._lock:
                    self._counters["dispatched"] += 1
                with self._inline_lock:
                    result, warm, _shared = _serve_one(
                        job, job.cnf, token, warm_key,
                        self._inline_engines, self.engine_cap,
                    )
                with self._lock:
                    self._counters["completed"] += 1
                    if warm:
                        self._counters["warm_hits"] += 1
                    self._absorb_kernel_stats(result)
            except Exception as exc:
                yield Completion(
                    index, job, None,
                    error="%s: %s" % (type(exc).__name__, exc),
                    error_kind=ERROR_CRASH, exception=exc,
                )
                continue
            yield Completion(index, job, result, warm=warm)

    # ------------------------------------------------------------------
    # Dispatch (all under self._lock)
    # ------------------------------------------------------------------
    def _dispatch_locked(self) -> None:
        """Assign pending tickets to idle workers, honouring pins and slots.

        Warm-keyed tickets are *pinned*: the first dispatch of a key binds
        it to a worker and every later ticket with the same key queues for
        that worker (parent-side — each worker has one job in flight), so
        a family's jobs run in submission order on one warm engine.
        """
        if not self._pending:
            return
        blocked_keys = set()
        remaining: List[_Ticket] = []
        for ticket in self._pending:
            if ticket.cancel_requested():
                self._deliver_cancelled(ticket)
                continue
            if ticket.stream.running >= ticket.stream.slots:
                remaining.append(ticket)
                continue
            if (
                self.mode == PROCESSES
                and ticket.job.solver not in self._known_backends
            ):
                # Registered after the workers were spawned: parent lane.
                self._launch_parent_lane(ticket, dispatch=True)
                continue
            worker_id = self._pick_worker(ticket, blocked_keys)
            if worker_id is None:
                if ticket.warm_key is not None:
                    blocked_keys.add(ticket.warm_key)
                remaining.append(ticket)
                continue
            self._assign(ticket, worker_id)
        self._pending = remaining

    def _pick_worker(self, ticket: _Ticket, blocked_keys) -> Optional[int]:
        if ticket.warm_key is not None:
            if ticket.warm_key in blocked_keys:
                return None
            pinned = self._pins.get(ticket.warm_key)
            if pinned is not None:
                return pinned if pinned in self._idle else None
        if not self._idle:
            return None
        choice = self._idle[0]
        if self.mode == PROCESSES and ticket.fingerprint is not None:
            for worker_id in self._idle:
                if ticket.fingerprint in self._workers[worker_id].cnf_mirror:
                    choice = worker_id
                    break
        return choice

    def _assign(self, ticket: _Ticket, worker_id: int) -> None:
        worker = self._workers[worker_id]
        self._idle.remove(worker_id)
        self._running[worker_id] = ticket
        ticket.stream.running += 1
        if ticket.warm_key is not None:
            self._pins[ticket.warm_key] = worker_id
            self._touch_engine_mirror(worker, worker_id, ticket.warm_key)
        self._counters["dispatched"] += 1
        if self.mode == PROCESSES:
            try:
                skipped = worker.send(ticket)
            except Exception as exc:
                # Unserialisable job: fail THIS ticket visibly instead of
                # letting the queue drop it and the stream hang.
                del self._running[worker_id]
                self._idle.append(worker_id)
                ticket.stream.running -= 1
                self._deliver(
                    ticket,
                    Completion(
                        ticket.index, ticket.job, None,
                        error="job could not be shipped to a worker "
                        "process: %s: %s" % (type(exc).__name__, exc),
                        error_kind=ERROR_CRASH, exception=exc,
                    ),
                )
                return
            if skipped:
                self._counters["ship_skipped"] += 1
            else:
                self._counters["cnf_shipped"] += 1
        else:
            token = CancellationToken()
            self._thread_tokens[ticket.id] = token
            worker.send(ticket, CompositeToken(ticket.stream.token, token))

    def _touch_engine_mirror(self, worker, worker_id: int, warm_key) -> None:
        """Replicate the worker's warm-engine LRU parent-side.

        Workers apply the exact same touch/insert/evict sequence in
        ``_serve_one`` (messages are handled in send order), so when the
        mirror evicts a key the worker's engine is gone too — the pin is
        released and the key's next job is free to (re)build its engine on
        any worker instead of queueing behind this one forever.
        """
        mirror = worker.engine_mirror
        if warm_key in mirror:
            mirror.move_to_end(warm_key)
            return
        mirror[warm_key] = True
        while len(mirror) > self.engine_cap:
            evicted, _ = mirror.popitem(last=False)
            if self._pins.get(evicted) == worker_id:
                del self._pins[evicted]

    def _launch_parent_lane(self, ticket: _Ticket, dispatch: bool) -> None:
        """Run a worker-unknown backend on a parent thread (counts a slot).

        ``dispatch=True`` is the first assignment of a pending ticket (it
        acquires a slot and counts as dispatched); ``dispatch=False``
        reruns a ticket whose worker reported :data:`ERROR_BACKEND` (its
        slot accounting was already charged).
        """
        self._running[-ticket.id] = ticket  # negative pseudo worker id
        ticket.stream.running += 1
        self._counters["parent_lane"] += 1
        if dispatch:
            self._counters["dispatched"] += 1
            token = CancellationToken()
            self._thread_tokens[ticket.id] = token
        else:
            token = self._thread_tokens.setdefault(
                ticket.id, CancellationToken()
            )
        composite = CompositeToken(ticket.stream.token, token)

        def run() -> None:
            try:
                result = execute_job(ticket.job, cancel=composite)
                self._out().put(
                    (ticket.id, -ticket.id, result, None, None, False, None)
                )
            except Exception as exc:
                self._out().put(
                    (ticket.id, -ticket.id, None, exc, ERROR_CRASH, False, None)
                )

        threading.Thread(target=run, daemon=True).start()

    def _deliver_cancelled(self, ticket: _Ticket) -> None:
        self._counters["cancelled"] += 1
        ticket.stream.outstanding -= 1
        ticket.stream.completions.put(
            Completion(
                ticket.index, ticket.job, _cancelled_result(ticket.job),
                cancelled=True,
            )
        )

    def _deliver(self, ticket: _Ticket, completion: Completion) -> None:
        ticket.stream.outstanding -= 1
        ticket.stream.completions.put(completion)

    # ------------------------------------------------------------------
    # Collector loop (one daemon thread per pool)
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        while True:
            if self._closed:
                with self._lock:
                    if not self._running and not self._pending:
                        return
            busy = False
            try:
                busy = self._drain_results()
                with self._lock:
                    self._poll_cancellations_locked()
                    self._check_workers_locked()
                    self._dispatch_locked()
            except Exception:
                # The collector must survive anything: a dead collector
                # would leave every stream consumer blocked forever.
                pass
            if not busy:
                # Idle tick: cheap cancellation/death polling cadence.  A
                # busy pool loops straight back into the blocking drain so
                # result->redispatch latency stays at queue-wakeup speed.
                self._wake.wait(0.01)
                self._wake.clear()

    def _drain_results(self) -> bool:
        """Process ready results; returns True when any were handled.

        The first read blocks briefly (so a finishing worker wakes the
        collector immediately instead of on the next poll tick); the rest
        of the queue is drained without waiting so freed workers can be
        redispatched in the same cycle.
        """
        out = self._out()
        processed = False
        while True:
            try:
                message = out.get(timeout=0.0 if processed else 0.01)
            except (queue_module.Empty, OSError, EOFError):
                return processed
            processed = True
            ticket_id, worker_id, result, error, kind, warm, shared_out = message
            with self._lock:
                ticket = self._running.pop(worker_id, None)
                if ticket is None or ticket.id != ticket_id:
                    # Late result of a terminated/requeued ticket: the
                    # worker slot state was already rebuilt; drop it.
                    if ticket is not None:
                        self._running[worker_id] = ticket
                    continue
                ticket.stream.running -= 1
                self._thread_tokens.pop(ticket_id, None)
                if worker_id >= 0:
                    worker = self._workers.get(worker_id)
                    if worker is not None:
                        worker.dead_strikes = 0
                        self._idle.append(worker_id)
                        if shared_out and hasattr(worker, "absorb_exports"):
                            # Piggybacked exports from a process worker flow
                            # into the fingerprint hub for the other racers.
                            worker.absorb_exports(ticket.fingerprint, shared_out)
                self._counters["completed"] += 1
                if warm:
                    self._counters["warm_hits"] += 1
                self._absorb_kernel_stats(result)
                if error is not None and kind == ERROR_BACKEND:
                    # Worker predates the registration; rerun parent-side.
                    self._known_backends = self._known_backends - {
                        ticket.job.solver
                    }
                    self._launch_parent_lane(ticket, dispatch=False)
                    continue
                message_text, exception = _error_fields(error)
                cancelled = (
                    error is None
                    and result is not None
                    and result.is_unknown
                    and ticket.signalled
                )
                self._deliver(
                    ticket,
                    Completion(
                        ticket.index, ticket.job, result,
                        cancelled=cancelled,
                        error=message_text,
                        error_kind=kind if error is not None else None,
                        exception=exception,
                        warm=warm,
                        worker=worker_id if worker_id >= 0 else None,
                    ),
                )

    def _poll_cancellations_locked(self) -> None:
        now = time.monotonic()
        for worker_id, ticket in list(self._running.items()):
            if not ticket.signalled and ticket.cancel_requested():
                ticket.signalled = True
                if worker_id >= 0:
                    self._workers[worker_id].signal_cancel(ticket.id)
                token = self._thread_tokens.get(ticket.id)
                if token is not None:
                    token.cancel()
                if self.mode == PROCESSES and worker_id >= 0:
                    ticket.grace_deadline = now + ticket.stream.join_grace
            if (
                ticket.grace_deadline is not None
                and now > ticket.grace_deadline
                and worker_id >= 0
            ):
                # Non-cancellable backend ignoring the token: terminate the
                # worker, respawn a fresh one, report the job cancelled.
                worker = self._workers.pop(worker_id)
                worker.terminate()
                del self._running[worker_id]
                ticket.stream.running -= 1
                self._unpin_worker(worker_id)
                self._counters["respawned"] += 1
                self._deliver_cancelled(ticket)
                if not self._closed:
                    self._spawn_worker()

    def _check_workers_locked(self) -> None:
        if self.mode != PROCESSES:
            return
        # Reap workers that died while idle (OOM kills on long-lived
        # deployments): left in the idle list they would eat a dispatched
        # job's requeue attempts without ever executing it.
        for worker_id in list(self._idle):
            worker = self._workers.get(worker_id)
            if worker is None or worker.alive():
                continue
            self._idle.remove(worker_id)
            del self._workers[worker_id]
            self._unpin_worker(worker_id)
            self._counters["respawned"] += 1
            if not self._closed:
                self._spawn_worker()
        for worker_id, ticket in list(self._running.items()):
            if worker_id < 0:
                continue
            worker = self._workers.get(worker_id)
            if worker is None or worker.alive():
                if worker is not None:
                    worker.dead_strikes = 0
                continue
            # A few strikes before declaring death, so a result already in
            # the output queue is not mistaken for a crash.
            worker.dead_strikes += 1
            if worker.dead_strikes < 3:
                continue
            del self._workers[worker_id]
            del self._running[worker_id]
            ticket.stream.running -= 1
            self._unpin_worker(worker_id)
            self._counters["respawned"] += 1
            if not self._closed:
                self._spawn_worker()
            ticket.attempts += 1
            if ticket.attempts < MAX_ATTEMPTS and not ticket.cancel_requested():
                # The job is requeued (front of the queue), not lost.
                self._counters["requeued"] += 1
                ticket.signalled = False
                ticket.grace_deadline = None
                self._pending.insert(0, ticket)
            else:
                self._deliver(
                    ticket,
                    Completion(
                        ticket.index, ticket.job, None,
                        error="worker process died without a result "
                        "(exitcode %r, attempt %d)"
                        % (worker.process.exitcode, ticket.attempts),
                        error_kind=ERROR_CRASH,
                    ),
                )

    def _unpin_worker(self, worker_id: int) -> None:
        for key, pinned in list(self._pins.items()):
            if pinned == worker_id:
                del self._pins[key]

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool.

        ``drain=True`` (the default) lets queued and running jobs finish
        before the workers exit; ``drain=False`` cancels everything that
        has not completed.  Either way the workers receive their sentinel,
        are joined, and the pool refuses new streams afterwards.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                for ticket in self._pending:
                    self._deliver_cancelled(ticket)
                self._pending = []
                for worker_id, ticket in self._running.items():
                    ticket.signalled = True
                    if self.mode == PROCESSES and worker_id >= 0:
                        worker = self._workers.get(worker_id)
                        if worker is not None:
                            worker.cancel_cell.value = _CANCEL_ALL
                    token = self._thread_tokens.get(ticket.id)
                    if token is not None:
                        token.cancel()
        self._wake.set()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._running and not self._pending:
                    break
            time.sleep(0.01)
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            worker.stop()
        for worker in workers:
            worker.join(max(0.1, deadline - time.monotonic()))
        with self._lock:
            self._workers.clear()
            self._idle = []
            self._pins.clear()


# ----------------------------------------------------------------------
# Shared pools (one per mode, process-wide)
# ----------------------------------------------------------------------
_SHARED_POOLS: Dict[str, WorkerPool] = {}
_SHARED_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def get_shared_pool(mode: Optional[str] = None) -> WorkerPool:
    """The process-wide shared pool for ``mode`` (created lazily).

    Sharing is what carries warm solver state across races and service
    requests; private pools (tests, benchmarks) construct
    :class:`WorkerPool` directly.
    """
    global _ATEXIT_REGISTERED
    if mode is None:
        mode = PROCESSES if processes_available() else THREADS
    with _SHARED_LOCK:
        pool = _SHARED_POOLS.get(mode)
        if pool is None or pool.closed:
            pool = WorkerPool(mode=mode)
            _SHARED_POOLS[mode] = pool
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_shared_pools)
            _ATEXIT_REGISTERED = True
        return pool


def shutdown_shared_pools(drain: bool = False, timeout: float = 5.0) -> None:
    """Shut down every shared pool (atexit hook; also used by tests)."""
    with _SHARED_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        try:
            pool.shutdown(drain=drain, timeout=timeout)
        except Exception:
            pass


def shared_pool_stats() -> Dict[str, Dict[str, object]]:
    """Stats of every live shared pool, keyed by mode (service healthz)."""
    with _SHARED_LOCK:
        return {mode: pool.stats() for mode, pool in _SHARED_POOLS.items()}
