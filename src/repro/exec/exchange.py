"""Learned-clause exchange across portfolio racers and warm pool engines.

The portfolio race (PR 3/7) runs many strategies on the *same* CNF; until
now each racer re-derived the same conflict clauses from scratch.  This
module adds the ManySAT/HordeSat-style cooperative layer:

* an :class:`ExchangeHub` per CNF content fingerprint
  (:func:`repro.pipeline.fingerprint.cnf_digest` — theory maps are mixed
  into the digest, so euf-lazy skeleton clauses can never leak into
  plain-CNF racers): a lock-guarded ring buffer of ``(lbd, literals)``
  frames with per-endpoint cursors and origin filtering (a solver never
  receives its own clauses back);
* an :class:`ExchangeEndpoint` is one solver's mailbox — either bound to a
  hub (thread/inline modes, parent-side process relays) or *standalone*
  (worker-process side), where frames are shuttled over the existing
  :class:`~repro.exec.pool.WorkerPool` queue protocol as piggybacked
  dispatch/result fields;
* a per-fingerprint **clause vault** on the :class:`DiskCache`
  (stage ``clause_vault``): when a sharing race ends, the hub's best
  clauses are persisted so a later service call — or a peer node via the
  cache-peering path — starts pre-seeded.

Sharing is **opt-in** (default off): imported clauses legitimately change
the search path, and the default configuration must preserve the replay
byte-identity invariants of the cache/service tests.  Enable it with the
``REPRO_CLAUSE_SHARING`` environment variable (``on``/``off`` or an
integer per-interval export budget) or per executor via
``PortfolioExecutor(clause_sharing=...)``.

Soundness: the kernel only exports clauses whose literals avoid the
current assumption variables and stops exporting entirely once
``add_clause`` grew its database beyond the fingerprinted CNF (see
:meth:`repro.sat.cdcl.CDCLSolver.attach_exchange`), so every exchanged
clause is implied by the shared base CNF and sharing stays sound under
assumption cores and across warm engines.
"""

from __future__ import annotations

import itertools
import os
import threading
import warnings
from collections import OrderedDict, deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CLAUSE_SHARING_ENV",
    "DEFAULT_EXPORT_BUDGET",
    "ExchangeEndpoint",
    "ExchangeHub",
    "SharingActivation",
    "VAULT_STAGE",
    "attach_engine",
    "exchange_stats",
    "hub_for",
    "load_vault",
    "relay_attach",
    "resolve_sharing",
    "sharing_budget",
    "sharing_config",
    "store_vault",
    "sync_engine_exchange",
]

#: Environment variable controlling default clause sharing:
#: unset/``off`` disables, ``on``/``auto`` enables with the default budget,
#: a positive integer enables with that per-interval export budget.
CLAUSE_SHARING_ENV = "REPRO_CLAUSE_SHARING"

#: Clauses a solver may publish per sync interval (restart) by default.
DEFAULT_EXPORT_BUDGET = 32
#: Only clauses with LBD <= this (or binary clauses) are exported.
DEFAULT_EXPORT_LBD = 4
#: Frames retained in one hub's ring buffer.
HUB_CAPACITY = 4096
#: Fingerprints with a live hub kept in the process-wide registry.
HUB_REGISTRY_CAP = 64
#: DiskCache stage name of the per-fingerprint clause vault.
VAULT_STAGE = "clause_vault"
#: Clauses retained per vault entry (merged best-first across races).
VAULT_CAP = 512

#: Reserved origin id of vault-seeded frames (delivered to every endpoint).
_VAULT_ORIGIN = 0

#: One frame: ``(lbd, (lit, lit, ...))`` with sorted DIMACS literals.
Frame = Tuple[int, Tuple[int, ...]]

_env_warned = False


def sharing_config() -> Optional[int]:
    """Per-interval export budget from ``REPRO_CLAUSE_SHARING``, or ``None``.

    ``None`` means sharing is off.  Unparseable values emit one
    ``RuntimeWarning`` per process and disable sharing (fail safe).
    """
    raw = os.environ.get(CLAUSE_SHARING_ENV)
    if raw is None:
        return None
    text = raw.strip().lower()
    if text in ("", "off", "false", "no", "0"):
        return None
    if text in ("on", "auto", "true", "yes"):
        return DEFAULT_EXPORT_BUDGET
    try:
        value = int(text)
    except ValueError:
        global _env_warned
        if not _env_warned:
            _env_warned = True
            warnings.warn(
                "ignoring invalid %s=%r: expected on/off or a positive "
                "integer export budget; see README" % (CLAUSE_SHARING_ENV, raw),
                RuntimeWarning,
                stacklevel=2,
            )
        return None
    return value if value > 0 else None


def resolve_sharing(clause_sharing) -> Optional[int]:
    """Normalise an executor-level ``clause_sharing`` parameter.

    ``None`` defers to the environment (:func:`sharing_config`); ``True``
    enables with the default budget; ``False`` disables; a positive integer
    enables with that budget.
    """
    if clause_sharing is None:
        return sharing_config()
    if clause_sharing is True:
        return DEFAULT_EXPORT_BUDGET
    if clause_sharing is False:
        return None
    value = int(clause_sharing)
    return value if value > 0 else None


class ExchangeEndpoint:
    """One solver's clause mailbox.

    Bound to a hub, ``publish``/``drain`` go through the hub's ring buffer
    with this endpoint's origin filtered out.  *Standalone* (``hub=None``)
    the endpoint is a relay buffer: ``feed`` loads incoming frames for the
    solver's next ``drain`` and ``take_exports`` collects what the solver
    published — the shape the process-mode piggyback frames shuttle across
    the worker queue protocol.
    """

    def __init__(self, hub: Optional["ExchangeHub"] = None, origin: int = -1):
        self.hub = hub
        self.origin = origin
        self._lock = threading.Lock()
        self._inbox: List[Frame] = []
        self._outbox: List[Frame] = []
        self._cursor = 0
        self.published = 0
        self.delivered = 0

    # -- solver-facing protocol (called from CDCLSolver._exchange_sync) --
    def publish(self, frames: Iterable[Frame]) -> None:
        frames = [(int(lbd), tuple(lits)) for lbd, lits in frames]
        if not frames:
            return
        with self._lock:
            self.published += len(frames)
            if self.hub is not None:
                self.hub.publish(self.origin, frames)
            else:
                self._outbox.extend(frames)
                if len(self._outbox) > 4 * HUB_CAPACITY:
                    del self._outbox[: len(self._outbox) - 2 * HUB_CAPACITY]

    def drain(self) -> List[Frame]:
        with self._lock:
            frames = self._inbox
            self._inbox = []
            if self.hub is not None:
                hub_frames, self._cursor = self.hub.collect(
                    self.origin, self._cursor
                )
                frames.extend(hub_frames)
            self.delivered += len(frames)
            return frames

    # -- relay-facing protocol (pool queue piggyback) --------------------
    def feed(self, frames: Iterable[Frame]) -> None:
        frames = [(int(lbd), tuple(lits)) for lbd, lits in frames]
        if not frames:
            return
        with self._lock:
            self._inbox.extend(frames)

    def take_exports(self) -> List[Frame]:
        with self._lock:
            out = self._outbox
            self._outbox = []
            return out


class ExchangeHub:
    """Lock-guarded clause ring buffer for one CNF fingerprint.

    Frames carry a monotone sequence number and the origin endpoint that
    published them; :meth:`collect` returns the frames past a cursor that
    were published by *other* origins.  The ring is content-deduplicated
    (N racers exporting the same glue clause occupy one slot) and bounded
    by :data:`HUB_CAPACITY` (oldest frames evicted first).
    """

    def __init__(self, fingerprint: str, capacity: int = HUB_CAPACITY):
        self.fingerprint = fingerprint
        self.capacity = capacity
        self._lock = threading.Lock()
        #: (seq, origin, frame) in sequence order; seqs are contiguous.
        self._frames: "deque[Tuple[int, int, Frame]]" = deque()
        self._keys: set = set()
        self._next_seq = 0
        self._origins = itertools.count(1)
        self.published = 0
        self.deduped = 0
        self.delivered = 0
        self.vault_seeded = False

    def endpoint(self) -> ExchangeEndpoint:
        """A fresh endpoint on this hub (receives the retained backlog)."""
        with self._lock:
            origin = next(self._origins)
        return ExchangeEndpoint(hub=self, origin=origin)

    def publish(self, origin: int, frames: Sequence[Frame]) -> None:
        with self._lock:
            for lbd, lits in frames:
                key = tuple(lits)
                if key in self._keys:
                    self.deduped += 1
                    continue
                self._keys.add(key)
                self._frames.append((self._next_seq, origin, (int(lbd), key)))
                self._next_seq += 1
                self.published += 1
            while len(self._frames) > self.capacity:
                _seq, _origin, frame = self._frames.popleft()
                self._keys.discard(frame[1])

    def collect(self, origin: int, cursor: int) -> Tuple[List[Frame], int]:
        """Frames past ``cursor`` not published by ``origin``; new cursor."""
        with self._lock:
            frames = self._frames
            if not frames:
                return [], self._next_seq
            base = frames[0][0]
            start = max(0, cursor - base)
            out = [
                frame
                for _seq, frame_origin, frame in itertools.islice(
                    frames, start, None
                )
                if frame_origin != origin
            ]
            self.delivered += len(out)
            return out, self._next_seq

    def seed(self, frames: Sequence[Frame]) -> int:
        """Load vault frames (origin :data:`_VAULT_ORIGIN`, seen by all)."""
        before = self.published
        self.publish(_VAULT_ORIGIN, frames)
        self.vault_seeded = True
        return self.published - before

    def snapshot(self) -> List[Frame]:
        """Retained frames, strongest first (vault persistence order)."""
        with self._lock:
            frames = [frame for _seq, _origin, frame in self._frames]
        frames.sort(key=lambda frame: (frame[0], len(frame[1]), frame[1]))
        return frames

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "frames": len(self._frames),
                "published": self.published,
                "delivered": self.delivered,
                "deduped": self.deduped,
            }


# ----------------------------------------------------------------------
# Process-wide hub registry and sharing activation
# ----------------------------------------------------------------------
_HUBS: "OrderedDict[str, ExchangeHub]" = OrderedDict()
_ACTIVE: Dict[str, Tuple[int, int]] = {}  # fingerprint -> (refcount, budget)
_LOCK = threading.Lock()
_VAULT_COUNTERS = {"loads": 0, "stores": 0, "seeded_frames": 0}


def hub_for(fingerprint: str) -> ExchangeHub:
    """The process-wide hub of a CNF fingerprint (created lazily, LRU)."""
    with _LOCK:
        hub = _HUBS.get(fingerprint)
        if hub is not None:
            _HUBS.move_to_end(fingerprint)
            return hub
        hub = ExchangeHub(fingerprint)
        _HUBS[fingerprint] = hub
        if len(_HUBS) > HUB_REGISTRY_CAP:
            # Evict the oldest hub that is not mid-race.
            for key in list(_HUBS):
                if key not in _ACTIVE and key != fingerprint:
                    del _HUBS[key]
                    break
        return hub


def sharing_budget(fingerprint: Optional[str]) -> Optional[int]:
    """The active export budget of a fingerprint, or ``None`` (off)."""
    if not fingerprint or not _ACTIVE:
        return None
    with _LOCK:
        entry = _ACTIVE.get(fingerprint)
        return entry[1] if entry is not None else None


class SharingActivation:
    """Context manager marking a race's fingerprints as sharing-enabled.

    While active, engines created (or warm engines re-used) for these
    fingerprints are attached to the fingerprint's hub; process-mode
    dispatches piggyback exchange frames.  Entry seeds each hub from the
    disk vault (once per hub lifetime); the final exit of a fingerprint
    persists the hub's best clauses back to the vault.
    """

    def __init__(self, fingerprints: Iterable[str], budget: int):
        self.fingerprints = sorted({fp for fp in fingerprints if fp})
        self.budget = int(budget)

    def __enter__(self) -> "SharingActivation":
        with _LOCK:
            for fp in self.fingerprints:
                count = _ACTIVE.get(fp, (0, self.budget))[0]
                _ACTIVE[fp] = (count + 1, self.budget)
        for fp in self.fingerprints:
            hub = hub_for(fp)
            if not hub.vault_seeded:
                frames = load_vault(fp)
                seeded = hub.seed(frames)
                if frames:
                    with _LOCK:
                        _VAULT_COUNTERS["loads"] += 1
                        _VAULT_COUNTERS["seeded_frames"] += seeded
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        released: List[str] = []
        with _LOCK:
            for fp in self.fingerprints:
                count, budget = _ACTIVE.get(fp, (1, self.budget))
                if count <= 1:
                    _ACTIVE.pop(fp, None)
                    released.append(fp)
                else:
                    _ACTIVE[fp] = (count - 1, budget)
        for fp in released:
            with _LOCK:
                hub = _HUBS.get(fp)
            if hub is not None:
                store_vault(fp, hub.snapshot())


class _NullActivation:
    def __enter__(self) -> "_NullActivation":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


def activation_for(fingerprints: Iterable[str], budget: Optional[int]):
    """A :class:`SharingActivation` (or a no-op when ``budget`` is None)."""
    if budget is None:
        return _NullActivation()
    return SharingActivation(fingerprints, budget)


# ----------------------------------------------------------------------
# Engine attachment
# ----------------------------------------------------------------------
class _AmbientRelay:
    """Thread-local relay consumed by the next engine attachment.

    Process-mode workers cannot see the parent's activation registry; the
    piggybacked dispatch frames are staged here around ``execute_job`` so
    :func:`attach_engine` (called inside ``SolverBackend.solve``) wires the
    engine to a standalone relay endpoint instead.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def set(self, budget: int, frames: Sequence[Frame]) -> None:
        self._local.pending = (int(budget), list(frames))
        self._local.endpoint = None

    def clear(self) -> Optional[ExchangeEndpoint]:
        endpoint = getattr(self._local, "endpoint", None)
        self._local.pending = None
        self._local.endpoint = None
        return endpoint

    def consume(self, engine) -> Optional[ExchangeEndpoint]:
        pending = getattr(self._local, "pending", None)
        if pending is None:
            return None
        budget, frames = pending
        endpoint = relay_attach(engine, budget, frames)
        self._local.endpoint = endpoint
        self._local.pending = None
        return endpoint

    def active(self) -> bool:
        return getattr(self._local, "pending", None) is not None


_AMBIENT = _AmbientRelay()


def relay_attach(engine, budget: int, frames: Sequence[Frame]):
    """Attach (or re-use) a standalone relay endpoint on a warm engine."""
    if not hasattr(engine, "attach_exchange"):
        return None
    endpoint = getattr(engine, "_exchange", None)
    if not isinstance(endpoint, ExchangeEndpoint) or endpoint.hub is not None:
        endpoint = ExchangeEndpoint()
        engine.attach_exchange(endpoint, export_budget=budget)
    endpoint.feed(frames)
    return endpoint


def sync_engine_exchange(engine, fingerprint: Optional[str]):
    """Match an engine's hub attachment to the current activation state.

    Called per job on warm engines in the parent-memory modes (threads /
    inline): attaches a hub endpoint while the fingerprint's race shares
    clauses, detaches once sharing ends so default-off runs stay
    deterministic.  Returns the endpoint (or ``None``).
    """
    if not hasattr(engine, "attach_exchange"):
        return None
    budget = sharing_budget(fingerprint)
    current = getattr(engine, "_exchange", None)
    if budget is None:
        if current is not None:
            engine.attach_exchange(None)
        return None
    if isinstance(current, ExchangeEndpoint) and current.hub is not None:
        return current
    endpoint = hub_for(fingerprint).endpoint()
    engine.attach_exchange(endpoint, export_budget=budget)
    return endpoint


def attach_engine(engine, cnf):
    """Attachment hook run by ``SolverBackend.solve`` after engine creation.

    Fast no-op (two attribute reads) unless a piggybacked relay is staged
    on this thread or some fingerprint is actively sharing.  Returns the
    attached endpoint, or ``None``.
    """
    if not hasattr(engine, "attach_exchange"):
        return None
    if _AMBIENT.active():
        return _AMBIENT.consume(engine)
    if not _ACTIVE:
        return None
    from ..pipeline.fingerprint import cnf_digest

    fingerprint = cnf_digest(cnf)
    budget = sharing_budget(fingerprint)
    if budget is None:
        return None
    endpoint = hub_for(fingerprint).endpoint()
    engine.attach_exchange(endpoint, export_budget=budget)
    return endpoint


class ambient_relay:
    """Stage piggybacked frames for the next in-thread engine attachment.

    ``with ambient_relay(budget, frames) as holder:`` around
    ``execute_job``; ``holder.endpoint`` afterwards carries the relay the
    engine actually attached (``None`` when the backend has no exchange
    support), whose ``take_exports()`` is the piggyback result payload.
    """

    def __init__(self, budget: int, frames: Sequence[Frame]):
        self.budget = budget
        self.frames = frames
        self.endpoint: Optional[ExchangeEndpoint] = None

    def __enter__(self) -> "ambient_relay":
        _AMBIENT.set(self.budget, self.frames)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        staged = _AMBIENT.clear()
        if staged is not None:
            self.endpoint = staged


# ----------------------------------------------------------------------
# Disk vault (per-fingerprint best clauses on the DiskCache)
# ----------------------------------------------------------------------
_VAULT_CACHES: Dict[str, object] = {}


def _vault_cache():
    """The DiskCache under ``REPRO_CACHE_DIR`` (None when unset)."""
    from ..pipeline.artifacts import DiskCache, default_cache_dir

    root = default_cache_dir()
    if not root:
        return None
    cache = _VAULT_CACHES.get(root)
    if cache is None:
        try:
            cache = DiskCache(root)
        except OSError:
            return None
        _VAULT_CACHES[root] = cache
    return cache


def frames_to_text(frames: Sequence[Frame]) -> str:
    """Serialise vault frames: one ``lbd lit lit ...`` line per clause."""
    lines = [
        " ".join([str(int(lbd))] + [str(int(lit)) for lit in lits])
        for lbd, lits in frames
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def frames_from_text(text: str) -> List[Frame]:
    frames: List[Frame] = []
    for line in text.splitlines():
        parts = line.split()
        if len(parts) < 2:
            continue
        try:
            lbd = int(parts[0])
            lits = tuple(int(p) for p in parts[1:])
        except ValueError:
            continue
        if any(lit == 0 for lit in lits):
            continue
        frames.append((max(1, lbd), lits))
    return frames


def load_vault(fingerprint: str, cache=None) -> List[Frame]:
    """The vault's clauses for a fingerprint (empty without a cache/entry)."""
    cache = cache if cache is not None else _vault_cache()
    if cache is None:
        return []
    payload = cache.load(VAULT_STAGE, fingerprint)
    if not payload:
        return []
    return frames_from_text(payload)


def store_vault(
    fingerprint: str, frames: Sequence[Frame], cache=None, cap: int = VAULT_CAP
) -> int:
    """Merge ``frames`` into the fingerprint's vault entry (best-first).

    Returns the number of clauses persisted (0 without a cache or frames).
    """
    cache = cache if cache is not None else _vault_cache()
    if cache is None or not frames:
        return 0
    merged: "OrderedDict[Tuple[int, ...], int]" = OrderedDict()
    for lbd, lits in list(frames) + load_vault(fingerprint, cache=cache):
        key = tuple(lits)
        known = merged.get(key)
        if known is None or lbd < known:
            merged[key] = int(lbd)
    best = sorted(
        ((lbd, key) for key, lbd in merged.items()),
        key=lambda frame: (frame[0], len(frame[1]), frame[1]),
    )[:cap]
    try:
        cache.store(VAULT_STAGE, fingerprint, frames_to_text(best))
    except OSError:
        return 0
    with _LOCK:
        _VAULT_COUNTERS["stores"] += 1
    return len(best)


# ----------------------------------------------------------------------
# Introspection (service /healthz)
# ----------------------------------------------------------------------
def exchange_stats() -> Dict[str, object]:
    """Aggregate clause-sharing counters (hubs, frames, vault traffic)."""
    with _LOCK:
        hubs = list(_HUBS.values())
        active = len(_ACTIVE)
        vault = dict(_VAULT_COUNTERS)
    published = delivered = deduped = frames = 0
    for hub in hubs:
        stats = hub.stats()
        published += stats["published"]
        delivered += stats["delivered"]
        deduped += stats["deduped"]
        frames += stats["frames"]
    return {
        "default_budget": sharing_config(),
        "hubs": len(hubs),
        "active_fingerprints": active,
        "frames": frames,
        "published": published,
        "delivered": delivered,
        "deduped": deduped,
        "vault": vault,
    }


def reset_exchange_state() -> None:
    """Drop every hub and activation (test isolation helper)."""
    with _LOCK:
        _HUBS.clear()
        _ACTIVE.clear()
        _VAULT_CACHES.clear()
        for key in _VAULT_COUNTERS:
            _VAULT_COUNTERS[key] = 0
