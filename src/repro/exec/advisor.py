"""Learned strategy selection: rank portfolio strategies before racing them.

The paper's tables are a strategy-selection problem solved by hand — which
SAT procedure, which encoding, which decomposition wins varies sharply per
design.  The :class:`StrategyAdvisor` automates the choice: a stdlib-only
k-nearest-neighbour predictor trained on the telemetry store
(:mod:`repro.telemetry`), ranking the candidate strategies for an incoming
formula from its cheap features (:mod:`repro.sat.features`).

The race policy built on top (see
:meth:`~repro.pipeline.VerificationPipeline.run_advised`) is an
**escalation ladder**, so verdicts are never lost, only worker-seconds:

1. race only the advisor's top-k shortlist, under a fraction of the time
   budget;
2. if the shortlist produces no definitive SAT/UNSAT answer, escalate to
   the **full** strategy set under the full budget — exactly the race that
   would have run without an advisor.

Determinism: given the same telemetry records (in file order) and the same
seed, ranking is a pure function of the features — neighbour selection and
vote aggregation break every tie on (distance, record order) and
(score, label) respectively, and no unordered iteration is involved.

``REPRO_ADVISOR`` controls the policy process-wide: unset/``auto`` enables
shortlisting whenever a trained store is available, an integer forces the
shortlist size ``k``, and ``off``/``0`` disables shortlisting (races stay
full-set; telemetry is still recorded so the store keeps learning).
"""

from __future__ import annotations

import math
import os
import threading
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sat.types import DEFAULT_SEED

#: Environment variable controlling the advisor (see module docstring).
ADVISOR_ENV = "REPRO_ADVISOR"

#: Shortlist size when nothing overrides it.
DEFAULT_TOP_K = 2

#: Neighbours consulted per prediction.
DEFAULT_NEIGHBOURS = 5

#: Minimum telemetry records before the advisor considers itself trained.
MIN_RECORDS = 5

#: Fraction of the race's time budget granted to the shortlist phase; the
#: escalated full-set race gets the whole budget again.
ESCALATION_FRACTION = 0.5

__all__ = [
    "ADVISOR_ENV",
    "DEFAULT_NEIGHBOURS",
    "DEFAULT_TOP_K",
    "ESCALATION_FRACTION",
    "MIN_RECORDS",
    "StrategyAdvisor",
    "advisor_enabled",
    "advisor_stats",
    "note_race",
    "reset_advisor_stats",
]


def advisor_enabled() -> Tuple[bool, Optional[int]]:
    """Resolve ``REPRO_ADVISOR``: ``(enabled, forced_k_or_None)``.

    Invalid values emit a ``RuntimeWarning`` and fall back to the default
    (enabled, automatic k) — mirroring ``REPRO_BATCH_WORKERS``.
    """
    raw = os.environ.get(ADVISOR_ENV)
    if raw is None:
        return True, None
    value = raw.strip().lower()
    if value in ("", "on", "auto", "true", "1"):
        return True, None
    if value in ("off", "0", "false", "none", "disabled"):
        return False, None
    try:
        k = int(value)
    except ValueError:
        warnings.warn(
            "ignoring invalid %s=%r: expected 'off', 'auto' or a shortlist "
            "size; see README" % (ADVISOR_ENV, raw),
            RuntimeWarning,
            stacklevel=2,
        )
        return True, None
    if k < 1:
        return False, None
    return True, k


@dataclass
class _Example:
    """One training point: a feature vector plus the race it describes."""

    features: Dict[str, float]
    winner: Optional[str]
    #: labels that answered definitively (sat/unsat), fastest first.
    definitive: Tuple[str, ...] = ()


@dataclass
class Shortlist:
    """The advisor's plan for one race."""

    indices: List[int]
    labels: List[str]
    predicted: Optional[str]
    ranking: List[str] = field(default_factory=list)


class StrategyAdvisor:
    """k-NN strategy ranker over telemetry records (stdlib only).

    ``records`` are telemetry dictionaries (see
    :func:`repro.telemetry.race_record`); malformed entries are skipped, so
    a partially corrupt store trains on its valid suffix.  ``k`` is the
    shortlist size, ``neighbours`` the vote pool per prediction,
    ``min_records`` the training-set floor below which :attr:`ready` is
    False and every race stays full-set.
    """

    def __init__(
        self,
        records: Sequence[Dict[str, object]] = (),
        k: int = DEFAULT_TOP_K,
        neighbours: int = DEFAULT_NEIGHBOURS,
        min_records: int = MIN_RECORDS,
        seed: int = DEFAULT_SEED,
    ) -> None:
        if k < 1:
            raise ValueError("shortlist size k must be >= 1, got %r" % (k,))
        self.k = k
        self.neighbours = max(1, neighbours)
        self.min_records = max(1, min_records)
        self.seed = seed
        self._examples: List[_Example] = []
        self._bounds: Dict[str, Tuple[float, float]] = {}
        self._train(records)

    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls, store, **kwargs
    ) -> "StrategyAdvisor":
        """Train from a :class:`~repro.telemetry.TelemetryStore` (None-safe)."""
        records = store.records() if store is not None else ()
        return cls(records, **kwargs)

    def _train(self, records: Sequence[Dict[str, object]]) -> None:
        for record in records:
            features = record.get("features")
            strategies = record.get("strategies")
            if not isinstance(features, dict) or not isinstance(
                strategies, list
            ):
                continue
            try:
                vector = {
                    str(name): float(value)
                    for name, value in features.items()
                }
            except (TypeError, ValueError):
                continue
            definitive = []
            for entry in strategies:
                if not isinstance(entry, dict):
                    continue
                if entry.get("status") in ("sat", "unsat"):
                    definitive.append(
                        (
                            float(entry.get("seconds", 0.0) or 0.0),
                            str(entry.get("label", "")),
                        )
                    )
            definitive.sort()
            winner = record.get("winner")
            self._examples.append(
                _Example(
                    features=vector,
                    winner=str(winner) if winner else None,
                    definitive=tuple(label for _seconds, label in definitive),
                )
            )
            for name, value in vector.items():
                low, high = self._bounds.get(name, (value, value))
                self._bounds[name] = (min(low, value), max(high, value))

    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """True once enough races carry a definitive winner to learn from."""
        winners = sum(1 for example in self._examples if example.winner)
        return winners >= self.min_records

    @property
    def examples(self) -> int:
        return len(self._examples)

    # ------------------------------------------------------------------
    def _distance(self, a: Dict[str, float], b: Dict[str, float]) -> float:
        """Mean squared distance over the normalised shared feature space."""
        total = 0.0
        dims = 0
        for name, (low, high) in sorted(self._bounds.items()):
            if name not in a or name not in b:
                continue
            span = high - low
            if span <= 0.0:
                delta = 0.0 if a[name] == b[name] else 1.0
            else:
                delta = (a[name] - b[name]) / span
            total += delta * delta
            dims += 1
        if dims == 0:
            return math.inf
        return total / dims

    def rank(
        self, features: Dict[str, float], labels: Sequence[str]
    ) -> List[str]:
        """Rank candidate labels, most promising first (deterministic).

        The ``neighbours`` nearest training races vote for their winner
        (full weight) and for every other strategy that answered
        definitively in them (half weight, discounted by finish rank);
        votes are distance-weighted.  Labels the telemetry has never seen
        keep their input order after all known labels — an unknown strategy
        is neither endorsed nor condemned.
        """
        labels = list(labels)
        if not self._examples:
            return labels
        scored = sorted(
            (self._distance(features, example.features), index)
            for index, example in enumerate(self._examples)
        )
        votes: Dict[str, float] = {}
        for distance, index in scored[: self.neighbours]:
            if math.isinf(distance):
                continue
            example = self._examples[index]
            weight = 1.0 / (1.0 + distance)
            if example.winner:
                votes[example.winner] = votes.get(example.winner, 0.0) + weight
            for finish_rank, label in enumerate(example.definitive):
                if label == example.winner:
                    continue
                votes[label] = votes.get(label, 0.0) + weight * 0.5 / (
                    1.0 + finish_rank
                )
        known = [label for label in labels if votes.get(label, 0.0) > 0.0]
        unknown = [label for label in labels if votes.get(label, 0.0) <= 0.0]
        known.sort(key=lambda label: (-votes[label], label))
        return known + unknown

    def shortlist(
        self, strategies: Sequence, features: Dict[str, float]
    ) -> Optional[Shortlist]:
        """The top-k plan for a race, or ``None`` (race the full set).

        ``None`` means the advisor is not trained, or the shortlist would
        not actually shrink the race.  Duplicate display labels keep their
        first strategy.
        """
        if not self.ready:
            return None
        labels = [strategy.display_label() for strategy in strategies]
        if self.k >= len(strategies):
            return None
        ranking = self.rank(features, labels)
        order = {label: position for position, label in enumerate(ranking)}
        indexed = sorted(
            range(len(labels)), key=lambda i: (order[labels[i]], i)
        )
        chosen = sorted(indexed[: self.k])
        return Shortlist(
            indices=chosen,
            labels=[labels[i] for i in chosen],
            predicted=ranking[0] if ranking else None,
            ranking=ranking,
        )


# ----------------------------------------------------------------------
# Process-wide advisor metrics (surfaced on /healthz and `repro status`)
# ----------------------------------------------------------------------
_STATS_LOCK = threading.Lock()
_STATS: Dict[str, int] = {}


def _zero_stats() -> Dict[str, int]:
    return {
        "races": 0,
        "advised": 0,
        "full": 0,
        "escalations": 0,
        "predicted_winner_hits": 0,
        "predicted_winner_misses": 0,
        "telemetry_appends": 0,
    }


def note_race(
    advised: bool,
    escalated: bool = False,
    predicted_hit: Optional[bool] = None,
    recorded: bool = False,
) -> None:
    """Fold one race into the process-wide advisor counters."""
    with _STATS_LOCK:
        stats = _STATS or _STATS.update(_zero_stats()) or _STATS
        stats["races"] += 1
        if advised:
            stats["advised"] += 1
        else:
            stats["full"] += 1
        if escalated:
            stats["escalations"] += 1
        if predicted_hit is True:
            stats["predicted_winner_hits"] += 1
        elif predicted_hit is False:
            stats["predicted_winner_misses"] += 1
        if recorded:
            stats["telemetry_appends"] += 1


def advisor_stats() -> Dict[str, object]:
    """Snapshot of the advisor counters plus the derived hit rate."""
    with _STATS_LOCK:
        stats = dict(_STATS) if _STATS else _zero_stats()
    judged = stats["predicted_winner_hits"] + stats["predicted_winner_misses"]
    stats["predicted_winner_rate"] = (
        round(stats["predicted_winner_hits"] / judged, 4) if judged else None
    )
    return stats


def reset_advisor_stats() -> None:
    with _STATS_LOCK:
        _STATS.clear()
