"""Portfolio strategies: solver × translation × parameter configurations.

A :class:`Strategy` names one complete tool-flow configuration that can take
part in a portfolio race: the SAT backend, the translation options that
produce its CNF, the backend's command parameters and the seed.  The
builders below produce the portfolios the paper races:

* :func:`solver_portfolio` — the same instance through several SAT
  procedures (Table 1 run as a race instead of a sweep);
* :func:`parameter_portfolio` — Chaff's base/base1/base2/base3 command
  parameter variations (Table 2);
* :func:`default_portfolio` — the cross product used by
  ``verify_design(portfolio=...)`` and the ``python -m repro race`` CLI:
  a spread of complete backends plus the parameter variations of the
  primary backend.

Strategies sharing a :class:`~repro.encoding.TranslationOptions` value share
every translation artifact through the pipeline's store, so a portfolio of
N strategies over one encoding translates once and solves N times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..encoding.translator import TranslationOptions
from ..sat.registry import get_backend
from ..sat.types import DEFAULT_SEED


@dataclass
class Strategy:
    """One racing configuration: backend + translation + solver options."""

    solver: str = "chaff"
    #: translation options; ``None`` means "use the caller's default", so
    #: every such strategy shares one CNF artifact.
    options: Optional[TranslationOptions] = None
    solver_options: Dict = field(default_factory=dict)
    seed: int = DEFAULT_SEED
    label: str = ""

    def display_label(self) -> str:
        if self.label:
            return self.label
        parts = [self.solver]
        if self.options is not None:
            parts.append(self.options.label())
            if self.options.encoding != "eij":
                parts.append(self.options.encoding)
        if self.solver_options:
            parts.append(
                ",".join(
                    "%s=%s" % (k, v) for k, v in sorted(self.solver_options.items())
                )
            )
        return "/".join(parts)

    def validate(self) -> None:
        """Eagerly validate the backend name and its options."""
        backend = get_backend(self.solver)
        backend.validate_options(self.solver_options)
        if self.options is not None:
            self.options.validate()


def normalize_portfolio(
    portfolio,
    seed: int = DEFAULT_SEED,
    solver_options: Optional[Dict] = None,
) -> List[Strategy]:
    """Accept the shorthands callers may pass as a ``portfolio`` argument.

    * a sequence of :class:`Strategy` — used as-is (each keeps its own
      seed and options);
    * a sequence of backend names — one strategy per backend carrying the
      caller's ``seed`` and ``solver_options``;
    * an integer N — the first N entries of :func:`default_portfolio`
      (seeded with the caller's ``seed``).
    """
    if isinstance(portfolio, int):
        return default_portfolio(seed=seed)[:portfolio]
    strategies: List[Strategy] = []
    for entry in portfolio:
        if isinstance(entry, Strategy):
            strategies.append(entry)
        elif isinstance(entry, str):
            strategies.append(
                Strategy(
                    solver=entry,
                    seed=seed,
                    solver_options=dict(solver_options or {}),
                )
            )
        else:
            raise TypeError(
                "portfolio entries must be Strategy or backend names, got %r"
                % (entry,)
            )
    return strategies


def solver_portfolio(
    solvers: Sequence[str],
    options: Optional[TranslationOptions] = None,
    seed: int = DEFAULT_SEED,
) -> List[Strategy]:
    """One strategy per backend, all sharing one translation."""
    return [
        Strategy(solver=name, options=options, seed=seed) for name in solvers
    ]


def parameter_portfolio(
    solver: str = "chaff",
    options: Optional[TranslationOptions] = None,
    seed: int = DEFAULT_SEED,
) -> List[Strategy]:
    """The base/base1/base2/base3 command-parameter variations as strategies."""
    # Imported lazily: repro.verify imports repro.pipeline which imports this
    # package.
    from ..verify.variations import parameter_variations

    return [
        Strategy(
            solver=solver,
            options=options,
            solver_options=dict(solver_options),
            seed=seed,
            label="%s/%s" % (solver, label),
        )
        for label, solver_options in parameter_variations()
    ]


#: Complete CNF backends spread across decision heuristics; the default
#: portfolio races these plus Chaff's parameter variations.
DEFAULT_PORTFOLIO_SOLVERS = ("chaff", "berkmin", "grasp-restarts")


def default_portfolio(
    solvers: Sequence[str] = DEFAULT_PORTFOLIO_SOLVERS,
    options: Optional[TranslationOptions] = None,
    include_parameter_variations: bool = True,
    seed: int = DEFAULT_SEED,
) -> List[Strategy]:
    """The stock portfolio: a backend spread plus parameter variations."""
    strategies = solver_portfolio(solvers, options=options, seed=seed)
    if include_parameter_variations and solvers:
        # The "base" parameter variation duplicates the plain first backend.
        strategies.extend(
            s
            for s in parameter_portfolio(solvers[0], options=options, seed=seed)
            if s.solver_options
        )
    return strategies
