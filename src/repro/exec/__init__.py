"""Portfolio execution engine: racing, cancellation, streaming completion.

The execution core behind the paper's "parallel runs": heterogeneous
strategies (solver backend × parameter variation × encoding × decomposition
window) race across worker processes, the first definitive SAT/UNSAT answer
wins and the losers are cancelled cooperatively through a shared
:class:`CancellationToken` polled inside the solvers' budget hooks.

* :class:`WorkerPool` — the **persistent** execution substrate: workers
  that live across races, warm incremental engines keyed by CNF content
  fingerprint, message-based per-job cancellation bridging, crash requeue
  and drain-on-shutdown (one shared pool per mode via
  :func:`get_shared_pool`);
* :class:`PortfolioExecutor` — process/thread/inline execution on the pool
  with ``as_completed``-style streaming (:meth:`~PortfolioExecutor.stream`),
  first-winner racing (:meth:`~PortfolioExecutor.race`) and the
  run-everything shape :func:`repro.sat.solve_batch` is built on
  (:meth:`~PortfolioExecutor.run_all`);
* :class:`Strategy` and the portfolio builders — the configurations the
  higher layers race (``verify_design(portfolio=...)``,
  ``run_parameter_variations(mode="race")``, ``python -m repro race``).
"""

from .advisor import (
    ADVISOR_ENV,
    DEFAULT_NEIGHBOURS,
    DEFAULT_TOP_K,
    ESCALATION_FRACTION,
    MIN_RECORDS,
    StrategyAdvisor,
    advisor_enabled,
    advisor_stats,
    note_race,
    reset_advisor_stats,
)
from .cancellation import (
    CancellationToken,
    CompositeToken,
    process_token,
    shared_token,
)
from .exchange import (
    CLAUSE_SHARING_ENV,
    ExchangeEndpoint,
    ExchangeHub,
    exchange_stats,
    hub_for,
    resolve_sharing,
    sharing_config,
)
from .executor import (
    INLINE,
    PROCESSES,
    THREADS,
    Completion,
    PortfolioExecutor,
    RaceOutcome,
    execute_job,
    resolve_worker_count,
)
from .pool import (
    WorkerPool,
    get_shared_pool,
    shared_pool_stats,
    shutdown_shared_pools,
    warm_key_for,
)
from .strategy import (
    DEFAULT_PORTFOLIO_SOLVERS,
    Strategy,
    default_portfolio,
    normalize_portfolio,
    parameter_portfolio,
    solver_portfolio,
)

__all__ = [
    "ADVISOR_ENV",
    "CLAUSE_SHARING_ENV",
    "CancellationToken",
    "Completion",
    "CompositeToken",
    "ExchangeEndpoint",
    "ExchangeHub",
    "shared_token",
    "DEFAULT_NEIGHBOURS",
    "DEFAULT_PORTFOLIO_SOLVERS",
    "DEFAULT_TOP_K",
    "ESCALATION_FRACTION",
    "INLINE",
    "MIN_RECORDS",
    "PROCESSES",
    "PortfolioExecutor",
    "RaceOutcome",
    "Strategy",
    "StrategyAdvisor",
    "THREADS",
    "WorkerPool",
    "advisor_enabled",
    "advisor_stats",
    "default_portfolio",
    "exchange_stats",
    "execute_job",
    "get_shared_pool",
    "hub_for",
    "normalize_portfolio",
    "note_race",
    "parameter_portfolio",
    "process_token",
    "reset_advisor_stats",
    "resolve_sharing",
    "resolve_worker_count",
    "shared_pool_stats",
    "sharing_config",
    "shutdown_shared_pools",
    "solver_portfolio",
    "warm_key_for",
]
