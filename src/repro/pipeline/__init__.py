"""Staged verification pipeline with artifact caching and batch execution.

The subsystem the rest of the library is built on:

* :class:`VerificationPipeline` — the staged flow ``BuildCorrectness ->
  EliminateUF -> Encode -> Translate -> Solve`` with per-stage memoisation;
* :class:`ArtifactStore` — the keyed artifact store with hit/miss counters;
* the :class:`~repro.sat.registry.SolverBackend` registry and
  :func:`~repro.sat.batch.solve_batch` (re-exported from :mod:`repro.sat`)
  for pluggable solver backends and parallel fan-out.

See ``docs/architecture.md`` for the stage graph, the artifact keys and how
to register a third-party backend.
"""

from ..sat.batch import SolveJob, solve_batch
from ..sat.registry import (
    SolverBackend,
    get_backend,
    register_backend,
    registered_backends,
    unregister_backend,
)
from .artifacts import ArtifactStore, DiskCache, StageCounters, default_cache_dir
from .fingerprint import content_digest, formula_digest
from .pipeline import (
    BUILD_CORRECTNESS,
    ELIMINATE_UF,
    ENCODE,
    MONOLITHIC,
    SOLVE,
    SOLVE_INCREMENTAL,
    STAGES,
    TRANSLATE,
    TRANSLATE_FAMILY,
    VerificationPipeline,
)
from .result import (
    BUGGY,
    INCONCLUSIVE,
    VERIFIED,
    VerificationResult,
    verdict_from_solver,
)

__all__ = [
    "ArtifactStore",
    "BUGGY",
    "DiskCache",
    "content_digest",
    "default_cache_dir",
    "formula_digest",
    "BUILD_CORRECTNESS",
    "ELIMINATE_UF",
    "ENCODE",
    "INCONCLUSIVE",
    "MONOLITHIC",
    "SOLVE",
    "SOLVE_INCREMENTAL",
    "STAGES",
    "TRANSLATE_FAMILY",
    "SolveJob",
    "SolverBackend",
    "StageCounters",
    "TRANSLATE",
    "VERIFIED",
    "VerificationPipeline",
    "VerificationResult",
    "get_backend",
    "register_backend",
    "registered_backends",
    "solve_batch",
    "unregister_backend",
    "verdict_from_solver",
]
