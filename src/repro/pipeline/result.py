"""Verification verdicts and the per-run result record.

Historically these lived in :mod:`repro.verify.flow`; they are defined here
so the pipeline can produce them without importing the verification-flow
wrappers (which import the pipeline).  :mod:`repro.verify` re-exports them,
so existing code keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..encoding.translator import TranslationResult
from ..sat.types import SolverResult

#: Verification verdicts.
VERIFIED = "verified"
BUGGY = "buggy"
INCONCLUSIVE = "inconclusive"


def verdict_from_solver(result: SolverResult) -> str:
    """Map a SAT result on the complement of the criterion to a verdict."""
    if result.is_unsat:
        return VERIFIED
    if result.is_sat:
        return BUGGY
    return INCONCLUSIVE


@dataclass
class VerificationResult:
    """Outcome of verifying one design with one configuration."""

    design: str
    verdict: str
    solver_result: SolverResult
    translation: Optional[TranslationResult]
    cnf_vars: int = 0
    cnf_clauses: int = 0
    translate_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    counterexample: Optional[Dict[str, bool]] = None
    label: str = ""
    #: criterion labels named by the assumption unsat core when this result
    #: came from the incremental path and the verdict is ``verified``.
    assumption_core: Optional[List[str]] = None
    #: per-call incremental solver statistics (kept learned clauses, core
    #: size, ...) when this result came from a warm assumption-based solve.
    incremental: Optional[Dict[str, float]] = None
    #: portfolio-race metadata (winner label, execution mode, wall clock,
    #: whether *this* strategy won or was cancelled) when this result came
    #: from a first-winner race.
    race: Optional[Dict[str, object]] = None
    #: snapshot of the pipeline's per-stage cache counters at packaging time
    #: (includes the persistent tier's ``disk_hits``/``disk_writes``), so a
    #: warm-cache run is observable directly on the result.
    cache_stats: Optional[Dict[str, Dict[str, float]]] = None

    @property
    def is_verified(self) -> bool:
        return self.verdict == VERIFIED

    @property
    def is_buggy(self) -> bool:
        return self.verdict == BUGGY

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by the benchmark harness."""
        stats = self.solver_result.stats
        summary = {
            "design": self.design,
            "verdict": self.verdict,
            "solver": self.solver_result.solver_name,
            "cnf_vars": self.cnf_vars,
            "cnf_clauses": self.cnf_clauses,
            "primary_vars": self.translation.primary_vars if self.translation else 0,
            "decisions": stats.decisions,
            "conflicts": stats.conflicts,
            "propagations": stats.propagations,
            "flips": stats.flips,
            "translate_seconds": round(self.translate_seconds, 4),
            "solve_seconds": round(self.solve_seconds, 4),
            "total_seconds": round(self.total_seconds, 4),
        }
        kernel = {
            "db_reductions": stats.db_reductions,
            "inprocessings": stats.inprocessings,
            "subsumed_clauses": stats.subsumed_clauses,
            "strengthened_clauses": stats.strengthened_clauses,
            "arena_compactions": stats.arena_compactions,
            "live_clauses": stats.live_clauses,
            "arena_literals": stats.arena_literals,
        }
        if any(kernel.values()):
            summary["kernel"] = kernel
        theory = {
            "thy_propagations": stats.thy_propagations,
            "thy_conflicts": stats.thy_conflicts,
            "thy_lemmas": stats.thy_lemmas,
            "thy_merges": stats.thy_merges,
            "thy_final_checks": stats.thy_final_checks,
        }
        if any(theory.values()):
            summary["theory"] = theory
        sharing = {
            "exported_clauses": stats.exported_clauses,
            "imported_clauses": stats.imported_clauses,
            "useful_imports": stats.useful_imports,
        }
        if any(sharing.values()):
            summary["sharing"] = sharing
        rates = stats.rates()
        if rates["propagations_per_second"]:
            summary["propagations_per_second"] = round(
                rates["propagations_per_second"], 1
            )
        if self.incremental is not None:
            summary["incremental"] = dict(self.incremental)
        if self.race is not None:
            summary["race"] = dict(self.race)
        if self.cache_stats is not None:
            summary["cache"] = {
                stage: dict(counters)
                for stage, counters in self.cache_stats.items()
            }
        return summary
