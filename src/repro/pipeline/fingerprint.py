"""Stable content fingerprints for the persistent artifact cache.

The in-memory :class:`~repro.pipeline.ArtifactStore` keys artifacts by
hash-consed expression ``uid`` s, which are only meaningful within one
interpreter run.  The persistent disk tier needs keys that are **identical
across interpreter runs and across processes**, so they are derived purely
from content: a canonical post-order serialisation of the EUFM formula is
hashed with sha256 (never Python ``hash()``, which is salted per process),
then combined with the translation-option key and any solver configuration.

Two processes building the same design with the same options therefore
compute byte-identical digests and share cache entries — that is what lets
a warm re-verification (or a sibling worker) skip straight to solving.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from ..eufm.terms import (
    And,
    BoolConst,
    Eq,
    Expr,
    FormulaITE,
    FuncApp,
    MemRead,
    MemWrite,
    Not,
    Or,
    PredApp,
    PropVar,
    TermITE,
    TermVar,
)
from ..eufm.traversal import iter_subexpressions

#: Bump when the serialisation format changes so stale cache entries from
#: older layouts are never decoded.
FINGERPRINT_VERSION = "1"


def _node_record(node: Expr, ids) -> str:
    """Canonical one-line record of one expression node.

    Children are referenced by their dense post-order ids, so the record
    stream is independent of the manager's uid allocation order.
    """
    if isinstance(node, TermVar):
        return "V:%s:%s" % (node.sort, node.name)
    if isinstance(node, FuncApp):
        return "F:%s:%s" % (
            node.func,
            ",".join(str(ids[a.uid]) for a in node.args),
        )
    if isinstance(node, PredApp):
        return "Q:%s:%s" % (
            node.pred,
            ",".join(str(ids[a.uid]) for a in node.args),
        )
    if isinstance(node, BoolConst):
        return "C:%d" % int(node.value)
    if isinstance(node, PropVar):
        return "P:%s" % node.name
    kind = {
        TermITE: "I",
        MemRead: "R",
        MemWrite: "W",
        Eq: "E",
        Not: "N",
        And: "A",
        Or: "O",
        FormulaITE: "J",
    }.get(type(node))
    if kind is None:
        # Future node types degrade to the class name + child ids, which is
        # still canonical as long as the type's children() order is.
        kind = type(node).__name__
    return "%s:%s" % (
        kind,
        ",".join(str(ids[c.uid]) for c in node.children()),
    )


def formula_digest(root: Expr) -> str:
    """sha256 hex digest of a formula's canonical structure.

    Stable across interpreter runs, managers and processes: structurally
    identical formulae (same operators, same variable names) digest
    identically even though their ``uid`` s differ.
    """
    ids = {}
    hasher = hashlib.sha256()
    hasher.update(("fp%s;" % FINGERPRINT_VERSION).encode("utf-8"))
    for node in iter_subexpressions(root):
        ids[node.uid] = len(ids)
        hasher.update(_node_record(node, ids).encode("utf-8"))
        hasher.update(b";")
    return hasher.hexdigest()


def cnf_digest(cnf) -> str:
    """sha256 hex digest of a CNF's clause database.

    This is the warm-engine key of the :class:`repro.exec.WorkerPool`: two
    CNF objects with identical clauses (and variable range) digest
    identically, so a re-translated family CNF reuses the warm incremental
    engine a worker built for an earlier, structurally identical instance.
    Variable *names* are deliberately excluded — they do not affect solver
    behaviour.

    The digest is memoised on the CNF object and recomputed when the
    variable or clause count changes (the only mutations the code base
    performs); it must never come from Python ``hash()``, which is salted
    per process.
    """
    memo = getattr(cnf, "_digest_memo", None)
    if memo is not None and memo[0] == cnf.num_vars and memo[1] == cnf.num_clauses:
        return memo[2]
    hasher = hashlib.sha256()
    hasher.update(("fp%s;cnf;%d;" % (FINGERPRINT_VERSION, cnf.num_vars)).encode())
    for clause in cnf.clauses:
        hasher.update(",".join(str(lit) for lit in clause).encode())
        hasher.update(b";")
    theory = getattr(cnf, "theory", None)
    if theory is not None:
        # A theory CNF must never share a warm-engine slot with the plain
        # CNF of the same clauses: the atom map changes solver behaviour.
        hasher.update(b"thy;")
        for chunk in theory.digest_parts():
            hasher.update(chunk)
            hasher.update(b";")
    digest = hasher.hexdigest()
    cnf._digest_memo = (cnf.num_vars, cnf.num_clauses, digest)
    return digest


def content_digest(parts: Iterable[object]) -> str:
    """sha256 hex digest over a sequence of key parts.

    Parts are rendered with ``repr`` (they must be primitives or tuples of
    primitives, e.g. :func:`~repro.encoding.translator.translate_key`
    output) and joined with an unambiguous separator.
    """
    hasher = hashlib.sha256()
    hasher.update(("fp%s" % FINGERPRINT_VERSION).encode("utf-8"))
    for part in parts:
        hasher.update(b"\x1f")
        hasher.update(repr(part).encode("utf-8"))
    return hasher.hexdigest()
