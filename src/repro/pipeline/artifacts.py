"""Keyed store for the pipeline's intermediate artifacts.

Every stage of the :class:`~repro.pipeline.VerificationPipeline` memoises its
output here under a structural key (criterion identity + the subset of
translation options the stage depends on).  The store keeps per-stage
hit/miss counters and per-artifact build times, which is how the cache-reuse
benchmarks and the stage-level unit tests observe that a Table-1-style sweep
over nine solvers builds the CNF exactly once.

On top of the in-memory tier the store can attach a :class:`DiskCache`: a
**persistent, content-addressed** cache shared across worker processes and
across interpreter sessions.  Disk keys are sha256 digests of canonical
serialisations (see :mod:`repro.pipeline.fingerprint`) — never Python
``hash()``, which is salted per process — so two processes verifying the
same design with the same options compute identical keys.  Payloads are
plain text (DIMACS for CNFs, JSON for solver results) written atomically,
so concurrent writers at worst duplicate work, never corrupt an entry.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

#: Environment variable naming the default persistent cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Optional[str]:
    """The cache directory named by ``REPRO_CACHE_DIR`` (None when unset)."""
    value = os.environ.get(CACHE_DIR_ENV)
    return value or None


# ----------------------------------------------------------------------
# Cache peering hook
# ----------------------------------------------------------------------
#: Per-cache-root peer fetchers: ``root -> fetch(stage, digest) -> payload``.
#: A cluster node registers its :class:`~repro.service.PeerCacheClient`
#: here so local disk misses consult the owning peer node before the
#: pipeline recomputes (see :mod:`repro.service.peers`).  Keyed by
#: absolute root path because several DiskCache instances may point at the
#: same directory within one process (service + pipelines).
_PEER_FETCHERS: Dict[str, Callable[[str, str], Optional[str]]] = {}


def register_peer_fetcher(
    root: str, fetcher: Callable[[str, str], Optional[str]]
) -> None:
    """Consult ``fetcher(stage, digest)`` on disk misses under ``root``."""
    _PEER_FETCHERS[os.path.abspath(os.path.expanduser(str(root)))] = fetcher


def unregister_peer_fetcher(root: str) -> None:
    _PEER_FETCHERS.pop(os.path.abspath(os.path.expanduser(str(root))), None)


@dataclass
class StageCounters:
    """Cache statistics of one pipeline stage."""

    hits: int = 0
    misses: int = 0
    build_seconds: float = 0.0
    #: artifacts served from the persistent disk tier (decoded, not rebuilt).
    disk_hits: int = 0
    #: artifacts written to the persistent disk tier after a build.
    disk_writes: int = 0

    @property
    def entries(self) -> int:
        return self.misses

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "build_seconds": round(self.build_seconds, 6),
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
        }


class DiskCache:
    """Content-addressed artifact files under one root directory.

    Entries live at ``<root>/<stage>/<digest[:2]>/<digest[2:]>`` as UTF-8
    text.  Writes go through a temporary file in the same directory followed
    by :func:`os.replace`, so readers in other processes only ever see
    complete payloads.  Unreadable or corrupt entries degrade to cache
    misses.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(os.path.expanduser(str(root)))
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, stage: str, digest: str) -> str:
        return os.path.join(self.root, stage, digest[:2], digest[2:])

    def load(self, stage: str, digest: str) -> Optional[str]:
        """The payload stored for ``(stage, digest)``, or ``None``.

        With a peer fetcher registered for this root (a cluster node's
        :class:`~repro.service.PeerCacheClient`), a local miss asks the
        digest's owner node for the payload and writes a hit through to
        local disk, so only the first miss per node pays the network trip.
        """
        try:
            with open(self._path(stage, digest), "r", encoding="utf-8") as handle:
                return handle.read()
        except OSError:
            pass
        fetcher = _PEER_FETCHERS.get(self.root)
        if fetcher is None:
            return None
        try:
            payload = fetcher(stage, digest)
        except Exception:
            return None  # peering must never take a lookup down
        if payload is not None:
            try:
                self.store(stage, digest, payload)
            except OSError:
                pass
        return payload

    def store(self, stage: str, digest: str, payload: str) -> None:
        """Atomically persist ``payload`` under ``(stage, digest)``."""
        path = self._path(stage, digest)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def contains(self, stage: str, digest: str) -> bool:
        return os.path.exists(self._path(stage, digest))

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage entry counts and byte totals of the persistent tier."""
        stats: Dict[str, Dict[str, int]] = {}
        try:
            stages = sorted(os.listdir(self.root))
        except OSError:
            return stats
        for stage in stages:
            stage_dir = os.path.join(self.root, stage)
            if not os.path.isdir(stage_dir):
                continue
            entries = 0
            total_bytes = 0
            for dirpath, _dirnames, filenames in os.walk(stage_dir):
                for filename in filenames:
                    if filename.endswith(".tmp"):
                        continue
                    entries += 1
                    try:
                        total_bytes += os.path.getsize(
                            os.path.join(dirpath, filename)
                        )
                    except OSError:
                        pass
            stats[stage] = {"entries": entries, "bytes": total_bytes}
        return stats

    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used entries until the tier fits ``max_bytes``.

        Recency is the file's mtime: reads do not touch it, so this is an
        LRU over *writes* — old artifacts age out, recently produced ones
        survive.  A long-running ``python -m repro serve`` calls this
        periodically so the cache directory stays bounded instead of
        growing with every distinct ``gen:`` grid member ever verified.
        Returns ``{"removed", "freed_bytes", "remaining_bytes",
        "remaining_entries", "skipped"}``; concurrent writers and pruners
        are safe — a file that disappears between the directory listing and
        its ``stat()``/``unlink()`` (another cluster node pruning the same
        shared tier) is skipped and counted in ``skipped`` instead of
        raising, and a file someone else already unlinked is excluded from
        the remaining totals.

        The ``telemetry/`` directory (the learned portfolio's training log —
        see :mod:`repro.telemetry`) is **never** evicted: it is tiny, and the
        advisor's accumulated knowledge must not age out with CNF payloads.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        from ..telemetry import TELEMETRY_DIR

        entries = []
        total = 0
        skipped = 0
        for dirpath, dirnames, filenames in os.walk(self.root):
            if dirpath == self.root and TELEMETRY_DIR in dirnames:
                dirnames.remove(TELEMETRY_DIR)
            for filename in filenames:
                if filename.endswith(".tmp"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    info = os.stat(path)
                except OSError:
                    # Vanished between listing and stat (concurrent prune).
                    skipped += 1
                    continue
                entries.append((info.st_mtime, info.st_size, path))
                total += info.st_size
        removed = 0
        freed = 0
        vanished = 0
        entries.sort()  # oldest mtime first
        for _mtime, size, path in entries:
            if total - freed <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                # Another pruner beat us to it: not freed by us, but no
                # longer part of the tier either.
                skipped += 1
                vanished += 1
                total -= size
                continue
            removed += 1
            freed += size
            directory = os.path.dirname(path)
            try:  # drop now-empty shard directories, but never the root
                while directory != self.root and not os.listdir(directory):
                    os.rmdir(directory)
                    directory = os.path.dirname(directory)
            except OSError:
                pass
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining_bytes": total - freed,
            "remaining_entries": len(entries) - removed - vanished,
            "skipped": skipped,
        }

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(self.root, topdown=False):
            for filename in filenames:
                try:
                    os.unlink(os.path.join(dirpath, filename))
                    removed += 1
                except OSError:
                    pass
            if dirpath != self.root:
                try:
                    os.rmdir(dirpath)
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DiskCache(root=%r)" % (self.root,)


class ArtifactStore:
    """Stage-addressed memo table with hit/miss accounting.

    Keys are ``(stage, key)`` pairs; ``key`` must be hashable and should
    identify the criterion and every option the stage's output depends on.
    One store instance is scoped to a single design (one expression manager);
    sharing a store across models would mix hash-consed expression spaces.

    An optional :class:`DiskCache` adds a persistent second tier consulted
    on memory misses by :meth:`get_or_build_persistent`; its content
    digests, unlike the in-memory keys, are stable across processes and
    sessions.
    """

    def __init__(self, disk: Optional[DiskCache] = None) -> None:
        self._artifacts: Dict[Tuple[str, Hashable], object] = {}
        self._counters: Dict[str, StageCounters] = {}
        self.disk = disk

    # ------------------------------------------------------------------
    def counters(self, stage: str) -> StageCounters:
        """Counters for one stage (created on first use)."""
        counter = self._counters.get(stage)
        if counter is None:
            counter = self._counters[stage] = StageCounters()
        return counter

    def contains(self, stage: str, key: Hashable) -> bool:
        """True when an artifact is cached for ``(stage, key)`` (no counter
        is touched — use :meth:`get_or_build` to consume it)."""
        return (stage, key) in self._artifacts

    def get_or_build(self, stage: str, key: Hashable, builder: Callable[[], object]):
        """Return the cached artifact for ``(stage, key)`` or build it.

        Returns ``(artifact, seconds)`` where ``seconds`` is the time spent
        building *during this call* — ``0.0`` on a cache hit, which is what
        lets callers report honest per-run translation times.
        """
        counter = self.counters(stage)
        full_key = (stage, key)
        if full_key in self._artifacts:
            counter.hits += 1
            return self._artifacts[full_key], 0.0
        started = time.perf_counter()
        artifact = builder()
        seconds = time.perf_counter() - started
        counter.misses += 1
        counter.build_seconds += seconds
        self._artifacts[full_key] = artifact
        return artifact, seconds

    def lookup(
        self,
        stage: str,
        key: Hashable,
        digest: Optional[str] = None,
        decode: Optional[Callable[[str], object]] = None,
    ):
        """Return the cached artifact for ``(stage, key)`` or ``None``.

        Unlike :meth:`get_or_build` this never builds.  With ``digest`` and
        ``decode`` the persistent disk tier is consulted on a memory miss
        and a successful decode is promoted into memory.  Counters are
        updated only on success (a miss here usually precedes a build
        elsewhere, which will count it).
        """
        full_key = (stage, key)
        if full_key in self._artifacts:
            self.counters(stage).hits += 1
            return self._artifacts[full_key]
        if self.disk is not None and digest is not None and decode is not None:
            payload = self.disk.load(stage, digest)
            if payload is not None:
                try:
                    artifact = decode(payload)
                except Exception:
                    return None
                self.counters(stage).disk_hits += 1
                self._artifacts[full_key] = artifact
                return artifact
        return None

    def put(self, stage: str, key: Hashable, artifact: object) -> None:
        """Insert an externally produced artifact (no counters touched)."""
        self._artifacts[(stage, key)] = artifact

    def get_or_build_persistent(
        self,
        stage: str,
        key: Hashable,
        digest: str,
        builder: Callable[[], object],
        encode: Callable[[object], str],
        decode: Callable[[str], object],
        persist: Optional[Callable[[object], bool]] = None,
    ):
        """Three-tier lookup: memory, then content-addressed disk, then build.

        ``digest`` is the artifact's stable content digest (see
        :mod:`repro.pipeline.fingerprint`); ``encode``/``decode`` translate
        between the artifact and its text payload.  ``persist`` can veto
        writing an artifact to disk (e.g. budget-capped ``unknown`` solver
        results, which a faster machine might still decide).  A corrupt disk
        entry degrades to a rebuild.  Returns ``(artifact, seconds)`` like
        :meth:`get_or_build`, with decode time counted for disk hits.
        """
        counter = self.counters(stage)
        full_key = (stage, key)
        if full_key in self._artifacts:
            counter.hits += 1
            return self._artifacts[full_key], 0.0
        if self.disk is not None:
            payload = self.disk.load(stage, digest)
            if payload is not None:
                started = time.perf_counter()
                try:
                    artifact = decode(payload)
                except Exception:
                    artifact = None
                if artifact is not None:
                    seconds = time.perf_counter() - started
                    counter.disk_hits += 1
                    self._artifacts[full_key] = artifact
                    return artifact, seconds
        started = time.perf_counter()
        artifact = builder()
        seconds = time.perf_counter() - started
        counter.misses += 1
        counter.build_seconds += seconds
        self._artifacts[full_key] = artifact
        if self.disk is not None and (persist is None or persist(artifact)):
            self.disk.store(stage, digest, encode(artifact))
            counter.disk_writes += 1
        return artifact, seconds

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage cache statistics (stage name -> hits/misses/seconds)."""
        return {stage: c.as_dict() for stage, c in sorted(self._counters.items())}

    def clear(self) -> None:
        """Drop all in-memory artifacts and reset the counters.

        The persistent disk tier is left untouched; use
        ``store.disk.clear()`` to wipe it.
        """
        self._artifacts.clear()
        self._counters.clear()

    def __len__(self) -> int:
        return len(self._artifacts)
