"""Keyed store for the pipeline's intermediate artifacts.

Every stage of the :class:`~repro.pipeline.VerificationPipeline` memoises its
output here under a structural key (criterion identity + the subset of
translation options the stage depends on).  The store keeps per-stage
hit/miss counters and per-artifact build times, which is how the cache-reuse
benchmarks and the stage-level unit tests observe that a Table-1-style sweep
over nine solvers builds the CNF exactly once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Tuple


@dataclass
class StageCounters:
    """Cache statistics of one pipeline stage."""

    hits: int = 0
    misses: int = 0
    build_seconds: float = 0.0

    @property
    def entries(self) -> int:
        return self.misses

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "build_seconds": round(self.build_seconds, 6),
        }


class ArtifactStore:
    """Stage-addressed memo table with hit/miss accounting.

    Keys are ``(stage, key)`` pairs; ``key`` must be hashable and should
    identify the criterion and every option the stage's output depends on.
    One store instance is scoped to a single design (one expression manager);
    sharing a store across models would mix hash-consed expression spaces.
    """

    def __init__(self) -> None:
        self._artifacts: Dict[Tuple[str, Hashable], object] = {}
        self._counters: Dict[str, StageCounters] = {}

    # ------------------------------------------------------------------
    def counters(self, stage: str) -> StageCounters:
        """Counters for one stage (created on first use)."""
        counter = self._counters.get(stage)
        if counter is None:
            counter = self._counters[stage] = StageCounters()
        return counter

    def contains(self, stage: str, key: Hashable) -> bool:
        """True when an artifact is cached for ``(stage, key)`` (no counter
        is touched — use :meth:`get_or_build` to consume it)."""
        return (stage, key) in self._artifacts

    def get_or_build(self, stage: str, key: Hashable, builder: Callable[[], object]):
        """Return the cached artifact for ``(stage, key)`` or build it.

        Returns ``(artifact, seconds)`` where ``seconds`` is the time spent
        building *during this call* — ``0.0`` on a cache hit, which is what
        lets callers report honest per-run translation times.
        """
        counter = self.counters(stage)
        full_key = (stage, key)
        if full_key in self._artifacts:
            counter.hits += 1
            return self._artifacts[full_key], 0.0
        started = time.perf_counter()
        artifact = builder()
        seconds = time.perf_counter() - started
        counter.misses += 1
        counter.build_seconds += seconds
        self._artifacts[full_key] = artifact
        return artifact, seconds

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage cache statistics (stage name -> hits/misses/seconds)."""
        return {stage: c.as_dict() for stage, c in sorted(self._counters.items())}

    def clear(self) -> None:
        """Drop all artifacts and reset the counters."""
        self._artifacts.clear()
        self._counters.clear()

    def __len__(self) -> int:
        return len(self._artifacts)
