"""The staged verification pipeline (tool-flow core).

The end-to-end flow ``processor model -> Burch–Dill formula -> UF
elimination -> domain encoding -> Tseitin CNF -> solver`` is decomposed into
five named stages, each memoised in an :class:`~repro.pipeline.ArtifactStore`
under a key combining the criterion and the subset of translation options the
stage actually depends on:

========================  ====================================================
stage                     artifact / key
========================  ====================================================
``BuildCorrectness``      EUFM formula, keyed by criterion
``EliminateUF``           memory/UF/UP-free formula, keyed by criterion +
                          (up_scheme, early_reduction, positive_equality)
``Encode``                Boolean formula + statistics, keyed by criterion +
                          the above + (encoding, add_transitivity)
``Translate``             Tseitin CNF, keyed like ``Encode`` + (presimplify)
``Solve``                 solver verdict, keyed like ``Translate`` +
                          (solver, seed, budget, solver options)
``TranslateFamily``       shared selector-guarded CNF of a criterion
                          family, keyed by all criterion keys + Translate
``SolveIncremental``      the family's verdict list from one warm
                          incremental solver, keyed like ``TranslateFamily``
                          + (solver, seed, budget, solver options)
========================  ====================================================

A Table-1-style sweep over nine solvers therefore performs UF elimination,
encoding and CNF translation exactly once, and the decomposed criterion's
per-window checks either run on one warm incremental solver over a shared
selector-guarded CNF (:meth:`VerificationPipeline.run_incremental`) or fan
out over worker processes through :func:`repro.sat.solve_batch`.  Solver
dispatch goes through the :class:`~repro.sat.registry.SolverBackend`
registry; backends that accept Boolean formulae directly (the BDD
evaluation of Fig. 7) skip the ``Translate`` stage and decide the encoded
formula itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..boolean.cnf import CNF
from ..boolean.tseitin import to_cnf
from ..exec.advisor import (
    ESCALATION_FRACTION,
    StrategyAdvisor,
    advisor_enabled,
    note_race,
)
from ..exec.executor import PortfolioExecutor
from ..exec.strategy import Strategy
from ..encoding.translator import (
    EliminationArtifact,
    TranslationOptions,
    TranslationResult,
    elimination_key,
    encode_eliminated,
    encoding_key,
    eliminate,
    translate_family,
    translate_key,
)
from ..euf.skeleton import (
    SkeletonTranslation,
    skeleton_to_cnf,
    translate_skeleton,
    translate_skeleton_family,
)
from ..eufm.terms import Formula
from ..hdl.machine import ProcessorModel
from ..sat.batch import SolveJob, solve_batch
from ..sat.incremental import SelectorFamily, build_selector_family
from ..sat.preprocess import simplify
from ..sat.registry import SolverBackend, get_backend
from ..sat.types import (
    DEFAULT_SEED,
    SAT,
    UNKNOWN,
    UNSAT,
    Budget,
    SolverResult,
    solver_result_from_json,
    solver_result_to_json,
)
from ..sat.features import formula_features
from ..telemetry import (
    TelemetryStore,
    design_id,
    race_record,
    telemetry_store_for,
)
from .artifacts import ArtifactStore, DiskCache, default_cache_dir
from .fingerprint import content_digest, formula_digest
from .result import VerificationResult, verdict_from_solver

#: Stage names (also the keys of :meth:`VerificationPipeline.stage_stats`).
BUILD_CORRECTNESS = "BuildCorrectness"
ELIMINATE_UF = "EliminateUF"
ENCODE = "Encode"
TRANSLATE = "Translate"
SOLVE = "Solve"
#: Incremental-path stages: the shared selector-guarded family CNF and the
#: warm assumption solves discharged on it.
TRANSLATE_FAMILY = "TranslateFamily"
SOLVE_INCREMENTAL = "SolveIncremental"

STAGES = (
    BUILD_CORRECTNESS,
    ELIMINATE_UF,
    ENCODE,
    TRANSLATE,
    SOLVE,
    TRANSLATE_FAMILY,
    SOLVE_INCREMENTAL,
)

#: Key of the monolithic correctness criterion.
MONOLITHIC = "monolithic"


@dataclass
class _FamilyArtifact:
    """Shared selector-guarded CNF hosting a family of criteria.

    Built once per (criteria, translation options) by the ``TranslateFamily``
    stage: every criterion is encoded into **one** Boolean manager and
    Tseitin-translated by one stateful translator, so subformulae shared
    between criteria (the monolithic consequent of every weak criterion, the
    transitivity constraints, common window structure) produce CNF clauses
    exactly once.
    """

    family: SelectorFamily
    translations: List[TranslationResult]
    #: (display label, unique family label) per criterion, in order.
    entries: List[Tuple[str, str]]


def _criterion_parts(criterion) -> Tuple[str, Optional[Formula]]:
    """Normalise a criterion argument to ``(label, formula-or-None)``.

    Accepts ``None`` (the monolithic criterion), a
    :class:`~repro.verify.decomposition.WeakCriterion`-like object with
    ``label`` / ``formula`` attributes, a bare EUFM formula, or a
    ``(label, formula)`` pair.
    """
    if criterion is None:
        return MONOLITHIC, None
    if hasattr(criterion, "formula") and hasattr(criterion, "label"):
        return criterion.label, criterion.formula
    if isinstance(criterion, tuple) and len(criterion) == 2:
        return criterion[0], criterion[1]
    return "", criterion


class VerificationPipeline:
    """Staged, memoising verification of one processor model.

    One pipeline is scoped to one model (and therefore one expression
    manager).  All entry points share the pipeline's artifact store, so
    repeated runs with overlapping configurations — solver sweeps, parameter
    variations, decomposed windows — rebuild only the stages whose inputs
    changed.
    """

    def __init__(
        self,
        model: ProcessorModel,
        store: Optional[ArtifactStore] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.model = model
        if store is None:
            cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
            disk = DiskCache(cache_dir) if cache_dir else None
            store = ArtifactStore(disk=disk)
        self.store = store
        #: memoised content digests (formula uid -> sha256 hex digest); the
        #: digests themselves are uid-independent, this only avoids
        #: re-serialising a formula already fingerprinted this session.
        self._digest_cache: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Stage accessors (each memoised in the artifact store)
    # ------------------------------------------------------------------
    def criterion_key(self, criterion=None) -> Hashable:
        label, formula = _criterion_parts(criterion)
        if formula is None:
            return MONOLITHIC
        # Formulae are hash-consed per manager, so the uid identifies the
        # criterion structurally within this pipeline's expression space.
        return (label, formula.uid)

    def correctness(self, criterion=None) -> Formula:
        """``BuildCorrectness``: the EUFM formula of the requested criterion."""
        formula, _seconds = self._correctness_timed(criterion)
        return formula

    def _correctness_timed(self, criterion) -> Tuple[Formula, float]:
        label, formula = _criterion_parts(criterion)

        def build() -> Formula:
            if formula is not None:
                return formula
            # Imported lazily: repro.verify imports the pipeline package.
            from ..verify.burch_dill import correctness_formula

            return correctness_formula(self.model)

        return self.store.get_or_build(
            BUILD_CORRECTNESS, self.criterion_key(criterion), build
        )

    def eliminated(
        self, options: Optional[TranslationOptions] = None, criterion=None
    ) -> EliminationArtifact:
        """``EliminateUF``: memory/UF/UP elimination of the criterion."""
        artifact, _seconds = self._eliminated_timed(options or TranslationOptions(), criterion)
        return artifact

    def _eliminated_timed(self, options, criterion):
        formula, build_seconds = self._correctness_timed(criterion)
        key = (self.criterion_key(criterion),) + elimination_key(options)
        artifact, seconds = self.store.get_or_build(
            ELIMINATE_UF, key, lambda: eliminate(self.model.manager, formula, options)
        )
        return artifact, build_seconds + seconds

    def encoded(
        self, options: Optional[TranslationOptions] = None, criterion=None
    ) -> TranslationResult:
        """``Encode``: Boolean formula of the criterion plus statistics."""
        translation, _seconds = self._encoded_timed(options or TranslationOptions(), criterion)
        return translation

    def _encoded_timed(self, options, criterion):
        artifact, upstream_seconds = self._eliminated_timed(options, criterion)
        key = (self.criterion_key(criterion),) + encoding_key(options)
        translation, seconds = self.store.get_or_build(
            ENCODE,
            key,
            lambda: encode_eliminated(self.model.manager, artifact, options),
        )
        return translation, upstream_seconds + seconds

    def cnf(
        self, options: Optional[TranslationOptions] = None, criterion=None
    ) -> CNF:
        """``Translate``: Tseitin CNF asserting the criterion's complement."""
        cnf, _tr, _seconds = self._cnf_timed(options or TranslationOptions(), criterion)
        return cnf

    def _content_digest(self, criterion, options=None, extra: Tuple = ()) -> str:
        """Stable cross-process digest of a criterion + configuration.

        Derived from the criterion formula's canonical structure (see
        :func:`~repro.pipeline.fingerprint.formula_digest`), the design name
        and bug set, the translation-option key and any ``extra`` solver
        configuration — never from per-process ``uid`` s or Python
        ``hash()``.  This is the key of the persistent disk tier.
        """
        _label, formula = _criterion_parts(criterion)
        if formula is None:
            formula = self.correctness()
        digest = self._digest_cache.get(formula.uid)
        if digest is None:
            digest = self._digest_cache[formula.uid] = formula_digest(formula)
        parts: List[object] = [
            self.model.name,
            tuple(sorted(self.model.bugs)),
            digest,
        ]
        if options is not None:
            parts.append(translate_key(options))
        parts.extend(extra)
        return content_digest(parts)

    def _cnf_timed(self, options, criterion):
        translation, upstream_seconds = self._encoded_timed(options, criterion)
        key = (self.criterion_key(criterion),) + translate_key(options)

        def build() -> CNF:
            cnf = to_cnf(translation.bool_formula, assert_value=False)
            if options.presimplify:
                # Forced units are kept so counterexample models stay exact.
                cnf, _verdict = simplify(cnf, emit_units=True)
            return cnf

        if self.store.disk is None:
            cnf, seconds = self.store.get_or_build(TRANSLATE, key, build)
        else:
            cnf, seconds = self.store.get_or_build_persistent(
                TRANSLATE,
                key,
                self._content_digest(criterion, options),
                build,
                encode=lambda c: c.to_dimacs_string(),
                decode=CNF.from_dimacs_string,
            )
        return cnf, translation, upstream_seconds + seconds

    # ------------------------------------------------------------------
    # Lazy DPLL(T) skeleton stages (theory-aware backends)
    # ------------------------------------------------------------------
    def _skeleton_encoded_timed(self, options, criterion):
        """``Encode`` (skeleton flavour): Boolean skeleton + atom map.

        Runs memory elimination and the Boolean-skeleton translation of
        :mod:`repro.euf.skeleton` — no e_ij expansion, no transitivity
        constraints.  Keyed alongside the eager ``Encode`` artifacts with
        a ``"skeleton"`` marker so both flavours coexist in one store.
        """
        formula, upstream_seconds = self._correctness_timed(criterion)
        key = ("skeleton", self.criterion_key(criterion)) + encoding_key(options)
        translation, seconds = self.store.get_or_build(
            ENCODE,
            key,
            lambda: translate_skeleton(self.model.manager, formula, options),
        )
        return translation, upstream_seconds + seconds

    def _skeleton_cnf_timed(self, options, criterion):
        """``Translate`` (skeleton flavour): theory-tagged skeleton CNF.

        The persistent tier round-trips the CNF through DIMACS, whose
        ``c thy`` comment lines carry the term table and atom map, so a
        disk-cached skeleton CNF replays with its theory intact.
        ``presimplify`` is deliberately not applied: the preprocessor's
        equivalence reasoning is not theory-aware and could erase atom
        variables the closure must see.
        """
        translation, upstream_seconds = self._skeleton_encoded_timed(
            options, criterion
        )
        key = ("skeleton", self.criterion_key(criterion)) + translate_key(options)

        def build() -> CNF:
            return skeleton_to_cnf(translation)

        if self.store.disk is None:
            cnf, seconds = self.store.get_or_build(TRANSLATE, key, build)
        else:
            cnf, seconds = self.store.get_or_build_persistent(
                TRANSLATE,
                key,
                self._content_digest(criterion, options, extra=("skeleton",)),
                build,
                encode=lambda c: c.to_dimacs_string(),
                decode=CNF.from_dimacs_string,
            )
        return cnf, translation, upstream_seconds + seconds

    def _cnf_for_backend(self, backend: SolverBackend, options, criterion):
        """Route a backend to its translation flavour.

        Theory-aware backends (``backend.theory`` set) get the Boolean
        skeleton with a theory map; everything else gets the eager
        propositional encoding.  Same ``(cnf, translation, seconds)``
        shape either way, so call sites need no per-backend cases.
        """
        if backend.theory:
            return self._skeleton_cnf_timed(options, criterion)
        return self._cnf_timed(options, criterion)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def run(
        self,
        solver: str = "chaff",
        options: Optional[TranslationOptions] = None,
        criterion=None,
        time_limit: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_flips: Optional[int] = None,
        seed: int = 0,
        label: str = "",
        **solver_options,
    ) -> VerificationResult:
        """Run the full pipeline for one solver/criterion/option configuration.

        The solver name and options are validated eagerly — before any
        translation work — against the backend registry.
        """
        backend = get_backend(solver)
        backend.validate_options(solver_options)
        options = options or TranslationOptions()
        solve_key = self._solve_key(
            criterion, options, backend, seed,
            (time_limit, max_conflicts, max_flips), solver_options,
        )

        if backend.accepts_formula and backend.formula_solver is not None:
            translation, translate_seconds = self._encoded_timed(options, criterion)
            cnf = None
        else:
            cnf, translation, translate_seconds = self._cnf_for_backend(
                backend, options, criterion
            )

        def solve_now() -> SolverResult:
            if cnf is None:
                return backend.formula_solver(
                    translation.bool_formula, time_limit=time_limit, **solver_options
                )
            budget = Budget(
                time_limit=time_limit,
                max_conflicts=max_conflicts,
                max_flips=max_flips,
            )
            return backend.solve(cnf, seed=seed, budget=budget, **solver_options)

        solve_started = time.perf_counter()
        if self.store.disk is None or cnf is None:
            result, _cached_seconds = self.store.get_or_build(
                SOLVE, solve_key, solve_now
            )
        else:
            result, _cached_seconds = self.store.get_or_build_persistent(
                SOLVE,
                solve_key,
                self._solve_digest(
                    criterion, options, backend, seed,
                    (time_limit, max_conflicts, max_flips), solver_options,
                ),
                solve_now,
                encode=solver_result_to_json,
                decode=solver_result_from_json,
                # Budget-capped unknowns are machine-dependent; only
                # definitive verdicts are worth replaying across sessions.
                persist=lambda r: r.status in (SAT, UNSAT),
            )
        # Report the solver's recorded effort so replayed (cache-hit) results
        # carry the same solve time as the original run; fall back to the
        # wall clock for engines that do not stamp their stats.
        solve_seconds = result.stats.time_seconds or (
            time.perf_counter() - solve_started
        )
        return self._package(
            result,
            translation,
            cnf,
            translate_seconds,
            solve_seconds,
            label or self._default_label(criterion, options),
        )

    def run_sweep(
        self,
        solvers: Sequence[str],
        options: Optional[TranslationOptions] = None,
        criterion=None,
        time_limit: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_flips: Optional[int] = None,
        seed: int = 0,
        **solver_options,
    ) -> List[VerificationResult]:
        """Run several solvers on one criterion, reusing every artifact.

        This is the Table-1 shape: UF elimination, encoding and CNF
        translation happen once; only the ``Solve`` stage runs per solver.
        """
        return [
            self.run(
                solver=solver,
                options=options,
                criterion=criterion,
                time_limit=time_limit,
                max_conflicts=max_conflicts,
                max_flips=max_flips,
                seed=seed,
                **solver_options,
            )
            for solver in solvers
        ]

    def run_batch(
        self,
        criteria: Sequence,
        solver: str = "chaff",
        options: Optional[TranslationOptions] = None,
        time_limit: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_flips: Optional[int] = None,
        seed: int = 0,
        max_workers: Optional[int] = None,
        **solver_options,
    ) -> List[VerificationResult]:
        """Check several criteria with one solver, fanning solves out.

        Translation runs in-process (artifacts are shared with every other
        entry point); the per-criterion CNF solves are distributed over
        worker processes via :func:`repro.sat.solve_batch`.  Results are
        returned in criterion order.  Backends that consume formulae directly
        (``bdd``) run inline instead.
        """
        backend = get_backend(solver)
        backend.validate_options(solver_options)
        options = options or TranslationOptions()
        if backend.accepts_formula:
            # Formula solvers honour the wall-clock budget only (see the
            # formula_solver protocol); the other budgets are still threaded
            # through so the Solve cache key reflects them.
            return [
                self.run(
                    solver=solver,
                    options=options,
                    criterion=criterion,
                    time_limit=time_limit,
                    max_conflicts=max_conflicts,
                    max_flips=max_flips,
                    seed=seed,
                    **solver_options,
                )
                for criterion in criteria
            ]

        budget_key = (time_limit, max_conflicts, max_flips)
        prepared = []
        for criterion in criteria:
            cnf, translation, translate_seconds = self._cnf_for_backend(
                backend, options, criterion
            )
            label, _formula = _criterion_parts(criterion)
            solve_key = self._solve_key(
                criterion, options, backend, seed, budget_key, solver_options
            )
            prepared.append((cnf, translation, translate_seconds, label, solve_key))

        # Fan only the criteria without a cached verdict out to the workers;
        # completed batch solves join the Solve stage's artifact store so
        # later run()/run_batch() calls with the same configuration replay
        # them instead of re-solving.
        pending = [
            entry
            for entry in prepared
            if not self.store.contains(SOLVE, entry[4])
        ]
        jobs = [
            SolveJob(
                cnf=cnf,
                solver=solver,
                seed=seed,
                time_limit=time_limit,
                max_conflicts=max_conflicts,
                max_flips=max_flips,
                options=dict(solver_options),
                tag=label,
            )
            for cnf, _translation, _seconds, label, _key in pending
        ]
        batch_results = dict(
            zip(
                (entry[4] for entry in pending),
                solve_batch(jobs, max_workers=max_workers),
            )
        )
        # Fold the workers' solve effort into the Solve-stage counter: the
        # in-process builder below only hands the precomputed result over,
        # so the store would otherwise record ~0 build seconds for solves
        # that really happened.
        self.store.counters(SOLVE).build_seconds += sum(
            result.stats.time_seconds for result in batch_results.values()
        )
        packaged = []
        for cnf, translation, translate_seconds, label, solve_key in prepared:
            result, _seconds = self.store.get_or_build(
                SOLVE, solve_key, lambda key=solve_key: batch_results[key]
            )
            packaged.append(
                self._package(
                    result,
                    translation,
                    cnf,
                    translate_seconds,
                    result.stats.time_seconds,
                    label or self._default_label(None, options),
                )
            )
        return packaged

    def run_portfolio(
        self,
        strategies: Sequence[Strategy],
        criterion=None,
        time_limit: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_workers: Optional[int] = None,
        executor: Optional[PortfolioExecutor] = None,
        default_options: Optional[TranslationOptions] = None,
    ) -> List[VerificationResult]:
        """Race a portfolio of strategies on one criterion; first winner ends it.

        Every strategy's CNF comes out of the shared artifact store (so
        strategies over the same :class:`TranslationOptions` translate
        once); the solves race through the
        :class:`~repro.exec.PortfolioExecutor` with cooperative
        cancellation — the first definitive SAT/UNSAT answer wins and the
        losers stop at their next budget check.

        Returns one :class:`VerificationResult` per strategy, in strategy
        order.  Each carries a ``race`` metadata dictionary (winner label,
        execution mode, wall clock, per-strategy role); cancelled losers
        come back ``inconclusive``.  If any strategy already has a cached
        definitive verdict (in-memory or on the persistent disk tier) the
        race is **skipped entirely** and that verdict is replayed — the
        warm-cache fast path.
        """
        from ..sat.batch import SolveJob

        strategies = list(strategies)
        if not strategies:
            return []
        for strategy in strategies:
            strategy.validate()
        budget_key = (time_limit, max_conflicts, None)

        prepared = []  # (strategy, options, cnf, translation, tsec, solve_key, job)
        for strategy in strategies:
            backend = get_backend(strategy.solver)
            options = strategy.options or default_options or TranslationOptions()
            cnf, translation, translate_seconds = self._cnf_for_backend(
                backend, options, criterion
            )
            solve_key = self._solve_key(
                criterion, options, backend, strategy.seed, budget_key,
                strategy.solver_options,
            )
            job = SolveJob(
                cnf=cnf,
                solver=strategy.solver,
                seed=strategy.seed,
                time_limit=time_limit,
                max_conflicts=max_conflicts,
                options=dict(strategy.solver_options),
                tag=strategy.display_label(),
            )
            prepared.append(
                (strategy, options, cnf, translation, translate_seconds,
                 solve_key, job)
            )

        # Warm-cache fast path: a cached definitive verdict for any strategy
        # decides the race without running a single solver.
        replayed = self._replay_portfolio(criterion, prepared, budget_key)
        if replayed is not None:
            return replayed

        outcome = (executor or PortfolioExecutor(max_workers=max_workers)).race(
            [entry[6] for entry in prepared], validate=False
        )
        race_info = outcome.summary()
        errors = {c.index: c.error for c in outcome.completions if c.error}

        results = []
        for index, (
            strategy, options, cnf, translation, translate_seconds, solve_key, job
        ) in enumerate(prepared):
            record = outcome.results[index]
            if record is None:  # errored strategy
                record = SolverResult(UNKNOWN, solver_name=strategy.solver)
            if record.status in (SAT, UNSAT):
                # Definitive answers join the Solve store (memory + disk) so
                # later runs — and other processes — replay them.
                self.store.counters(SOLVE).build_seconds += record.stats.time_seconds
                if self.store.disk is None:
                    self.store.get_or_build(SOLVE, solve_key, lambda r=record: r)
                else:
                    self.store.get_or_build_persistent(
                        SOLVE,
                        solve_key,
                        self._solve_digest(
                            criterion, options, get_backend(strategy.solver),
                            strategy.seed, budget_key, strategy.solver_options,
                        ),
                        lambda r=record: r,
                        encode=solver_result_to_json,
                        decode=solver_result_from_json,
                    )
            packaged = self._package(
                record,
                translation,
                cnf,
                translate_seconds,
                record.stats.time_seconds,
                job.tag,
            )
            packaged.race = dict(race_info)
            packaged.race["label"] = job.tag
            packaged.race["is_winner"] = index == outcome.winner_index
            packaged.race["was_cancelled"] = index in outcome.cancelled_indices
            if index in errors:
                # A crashed strategy must stay distinguishable from a
                # budget-exhausted one.
                packaged.race["error"] = errors[index]
            results.append(packaged)
        return results

    # ------------------------------------------------------------------
    # Learned portfolio (advisor-driven shortlist racing)
    # ------------------------------------------------------------------
    def features(
        self,
        options: Optional[TranslationOptions] = None,
        criterion=None,
        windows: int = 0,
    ) -> Dict[str, float]:
        """Cheap advisor features of one criterion (:mod:`repro.sat.features`).

        The CNF and translation come out of the regular memoised stages, so
        feature extraction on a formula about to be raced is almost free —
        the race would have translated it anyway.
        """
        options = options or TranslationOptions()
        cnf, translation, _seconds = self._cnf_timed(options, criterion)
        return formula_features(
            cnf, translation=translation, model=self.model, windows=windows
        )

    def telemetry_store(self) -> Optional[TelemetryStore]:
        """The telemetry store co-located with the persistent cache tier."""
        if self.store.disk is None:
            return None
        return telemetry_store_for(self.store.disk.root)

    def run_advised(
        self,
        strategies: Sequence[Strategy],
        criterion=None,
        time_limit: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_workers: Optional[int] = None,
        executor: Optional[PortfolioExecutor] = None,
        default_options: Optional[TranslationOptions] = None,
        advisor: Optional[StrategyAdvisor] = None,
        telemetry: Optional[TelemetryStore] = None,
        record: bool = True,
        source: str = "race",
    ) -> List[VerificationResult]:
        """:meth:`run_portfolio` behind the learned advisor's escalation ladder.

        When a trained :class:`~repro.exec.advisor.StrategyAdvisor` is
        available (passed in, or built from the telemetry store next to the
        persistent cache) and ``REPRO_ADVISOR`` does not disable it, only the
        advisor's top-k shortlist races first, under
        ``time_limit * ESCALATION_FRACTION``.  A definitive SAT/UNSAT answer
        there ends the job — the skipped strategies come back as
        ``inconclusive`` placeholders, exactly like cancelled losers.  If the
        shortlist fails to decide, the **full** strategy set races under the
        full budget: the verdict of the advisor-free race is always
        recovered, only worker-seconds are at stake.

        Untrained/empty/corrupt telemetry, ``REPRO_ADVISOR=off``, or a
        shortlist that would not shrink the race all degrade to a plain
        full-set :meth:`run_portfolio`.  Every non-replayed race is appended
        back to the telemetry store (``record=False`` opts out), so the
        advisor improves online; each result's ``race["advisor"]`` documents
        the decision taken.
        """
        strategies = list(strategies)
        if not strategies:
            return []
        enabled, forced_k = advisor_enabled()
        if telemetry is None:
            telemetry = self.telemetry_store()
        if advisor is None and enabled and telemetry is not None:
            kwargs = {"k": forced_k} if forced_k is not None else {}
            advisor = StrategyAdvisor.from_store(telemetry, **kwargs)

        features = self.features(default_options, criterion)
        shortlist = None
        if enabled and advisor is not None:
            shortlist = advisor.shortlist(strategies, features)

        info: Dict[str, object] = {
            "enabled": enabled,
            "ready": bool(advisor is not None and advisor.ready),
            "k": advisor.k if advisor is not None else None,
            "shortlist": list(shortlist.labels) if shortlist else None,
            "predicted": shortlist.predicted if shortlist else None,
            "escalated": False,
            "hit": None,
            "phase": "full",
        }

        race_kwargs = dict(
            criterion=criterion,
            max_conflicts=max_conflicts,
            max_workers=max_workers,
            executor=executor,
            default_options=default_options,
        )
        escalated = False
        shortlist_seconds = 0.0
        if shortlist is None:
            results = self.run_portfolio(
                strategies, time_limit=time_limit, **race_kwargs
            )
        else:
            info["phase"] = "shortlist"
            shortlist_budget = (
                time_limit * ESCALATION_FRACTION
                if time_limit is not None
                else None
            )
            chosen = [strategies[index] for index in shortlist.indices]
            short_results = self.run_portfolio(
                chosen, time_limit=shortlist_budget, **race_kwargs
            )
            shortlist_seconds = sum(r.solve_seconds for r in short_results)
            decided = any(
                r.solver_result.status in (SAT, UNSAT) for r in short_results
            )
            if decided:
                results = self._merge_advised(
                    strategies, shortlist.indices, short_results,
                    criterion, default_options,
                )
            else:
                # Escalation: the shortlist ran dry — fall back to exactly
                # the race an advisor-free caller would have run, with the
                # full budget (the shortlist's spend is sunk, not deducted,
                # so verdict availability never depends on the advisor).
                escalated = True
                info["escalated"] = True
                info["phase"] = "escalated"
                results = self.run_portfolio(
                    strategies, time_limit=time_limit, **race_kwargs
                )

        winner_label = None
        for result in results:
            if result.race.get("is_winner") and result.solver_result.status in (
                SAT, UNSAT,
            ):
                winner_label = result.label
                break
        predicted_hit = None
        if shortlist is not None and winner_label is not None:
            predicted_hit = winner_label == shortlist.predicted
            info["hit"] = predicted_hit
        info["worker_seconds"] = round(
            sum(r.solve_seconds for r in results) + (
                shortlist_seconds if escalated else 0.0
            ),
            6,
        )

        recorded = False
        replayed = any(r.race.get("replayed") for r in results)
        if record and telemetry is not None and not replayed:
            entries = [
                {
                    "label": r.label,
                    "status": r.solver_result.status,
                    "seconds": r.solve_seconds,
                }
                for r in results
                if not r.race.get("skipped")
            ]
            verdict = "inconclusive"
            for r in results:
                if r.race.get("is_winner") and r.verdict != "inconclusive":
                    verdict = r.verdict
                    break
            payload = race_record(
                design=design_id(self.model),
                features=features,
                strategies=entries,
                winner=winner_label,
                verdict=verdict,
                source=source,
            )
            payload["advised"] = shortlist is not None
            payload["escalated"] = escalated
            # Clause-exchange totals so the advisor's training data records
            # whether sharing helped this race (all zero when sharing is off).
            exported = imported = useful = 0
            for r in results:
                stats = r.solver_result.stats
                exported += stats.exported_clauses
                imported += stats.imported_clauses
                useful += stats.useful_imports
            if exported or imported or useful:
                payload["sharing"] = {
                    "exported_clauses": exported,
                    "imported_clauses": imported,
                    "useful_imports": useful,
                }
            telemetry.append(payload)
            recorded = True

        note_race(
            advised=shortlist is not None,
            escalated=escalated,
            predicted_hit=predicted_hit,
            recorded=recorded,
        )
        for result in results:
            result.race["advisor"] = dict(info)
        return results

    def _merge_advised(
        self, strategies, indices, short_results, criterion, default_options
    ) -> List[VerificationResult]:
        """Expand a decided shortlist race back to full strategy order.

        Strategies the advisor skipped come back as ``inconclusive``
        placeholders carrying the winner's race metadata with
        ``skipped=True`` — shaped exactly like cancelled losers, so callers
        that scan for ``is_winner`` / definitive statuses need no new case.
        """
        by_index = dict(zip(indices, short_results))
        race_info = short_results[0].race if short_results else {}
        results = []
        for index, strategy in enumerate(strategies):
            if index in by_index:
                packaged = by_index[index]
                packaged.race = dict(packaged.race)
            else:
                options = (
                    strategy.options or default_options or TranslationOptions()
                )
                cnf, translation, translate_seconds = self._cnf_for_backend(
                    get_backend(strategy.solver), options, criterion
                )
                packaged = self._package(
                    SolverResult(UNKNOWN, solver_name=strategy.solver),
                    translation,
                    cnf,
                    translate_seconds,
                    0.0,
                    strategy.display_label(),
                )
                packaged.race = dict(race_info)
                packaged.race["label"] = strategy.display_label()
                packaged.race["is_winner"] = False
                packaged.race["was_cancelled"] = False
                packaged.race["skipped"] = True
            packaged.race["strategies"] = len(strategies)
            results.append(packaged)
        return results

    def _replay_portfolio(self, criterion, prepared, budget_key):
        """Replay a portfolio race decided by a cached definitive verdict."""
        for index, (
            strategy, options, cnf, translation, translate_seconds, solve_key, job
        ) in enumerate(prepared):
            backend = get_backend(strategy.solver)
            digest = None
            if self.store.disk is not None:
                digest = self._solve_digest(
                    criterion, options, backend, strategy.seed, budget_key,
                    strategy.solver_options,
                )
            record = self.store.lookup(
                SOLVE, solve_key, digest=digest, decode=solver_result_from_json
            )
            if record is None or record.status not in (SAT, UNSAT):
                continue

            results = []
            for other_index, (
                o_strategy, _o, o_cnf, o_translation, o_tsec, _k, o_job
            ) in enumerate(prepared):
                if other_index == index:
                    packaged = self._package(
                        record, translation, cnf, translate_seconds,
                        record.stats.time_seconds, job.tag,
                    )
                else:
                    packaged = self._package(
                        SolverResult(UNKNOWN, solver_name=o_strategy.solver),
                        o_translation, o_cnf, o_tsec, 0.0, o_job.tag,
                    )
                packaged.race = {
                    "mode": "replay",
                    "workers": 0,
                    "strategies": len(prepared),
                    "winner_index": index,
                    "winner": job.tag,
                    "cancelled": len(prepared) - 1,
                    "wall_seconds": 0.0,
                    "label": o_job.tag,
                    "is_winner": other_index == index,
                    "was_cancelled": other_index != index,
                    "replayed": True,
                }
                results.append(packaged)
            return results
        return None

    def _family_timed(self, criteria: Sequence, options: TranslationOptions):
        """``TranslateFamily``: one selector-guarded CNF for all criteria.

        The criterion formulae come through (and warm) the regular
        ``BuildCorrectness`` stage; elimination, encoding and the Tseitin
        translation run **once for the whole family** through
        :func:`~repro.encoding.translator.translate_family`, so the
        subformulae the criteria share (e.g. the monolithic consequent of
        every decomposition window) hit the CNF exactly once.
        """
        upstream_seconds = 0.0
        formulas = []
        for criterion in criteria:
            formula, seconds = self._correctness_timed(criterion)
            upstream_seconds += seconds
            formulas.append(formula)
        key = (
            tuple(self.criterion_key(c) for c in criteria),
        ) + translate_key(options)

        def build() -> _FamilyArtifact:
            translations = translate_family(self.model.manager, formulas, options)
            entries: List[Tuple[str, str]] = []
            roots = []
            for index, (criterion, translation) in enumerate(
                zip(criteria, translations)
            ):
                display = self._default_label(criterion, options)
                family_label = "%d:%s" % (index, display)
                entries.append((display, family_label))
                roots.append((family_label, translation.bool_formula))
            family = build_selector_family(roots)
            if options.presimplify:
                family.cnf, _verdict = simplify(family.cnf, emit_units=True)
            return _FamilyArtifact(
                family=family, translations=translations, entries=entries
            )

        artifact, seconds = self.store.get_or_build(TRANSLATE_FAMILY, key, build)
        return artifact, upstream_seconds + seconds

    def _skeleton_family_timed(self, criteria: Sequence, options: TranslationOptions):
        """``TranslateFamily`` (skeleton flavour) for theory-aware backends.

        One :class:`~repro.euf.skeleton.SkeletonBuilder` spans every
        criterion, so the term table, atom pool and side conditions are
        shared; the selector-guarded CNF carries a single theory map
        covering the whole family.  ``presimplify`` is skipped for the
        same reason as in :meth:`_skeleton_cnf_timed`.
        """
        upstream_seconds = 0.0
        formulas = []
        for criterion in criteria:
            formula, seconds = self._correctness_timed(criterion)
            upstream_seconds += seconds
            formulas.append(formula)
        key = (
            "skeleton",
            tuple(self.criterion_key(c) for c in criteria),
        ) + translate_key(options)

        def build() -> _FamilyArtifact:
            family_translation = translate_skeleton_family(
                self.model.manager, formulas, options
            )
            entries: List[Tuple[str, str]] = []
            roots = []
            for index, criterion in enumerate(criteria):
                display = self._default_label(criterion, options)
                family_label = "%d:%s" % (index, display)
                entries.append((display, family_label))
                roots.append((family_label, family_translation.roots[index]))
            family = build_selector_family(roots)
            family.cnf.theory = family_translation.builder.theory_map(family.cnf)
            translations = [
                SkeletonTranslation(
                    bool_formula=family_translation.roots[index],
                    bool_manager=family_translation.bool_manager,
                    options=options,
                    builder=family_translation.builder,
                    atom_count=family_translation.per_root_atoms[index],
                )
                for index in range(len(criteria))
            ]
            return _FamilyArtifact(
                family=family, translations=translations, entries=entries
            )

        artifact, seconds = self.store.get_or_build(TRANSLATE_FAMILY, key, build)
        return artifact, upstream_seconds + seconds

    def run_incremental(
        self,
        criteria: Sequence,
        solver: str = "chaff",
        options: Optional[TranslationOptions] = None,
        time_limit: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        seed: int = DEFAULT_SEED,
        **solver_options,
    ) -> List[VerificationResult]:
        """Check several criteria on **one warm incremental solver**.

        The family is Tseitin-translated once into a shared CNF with one
        selector literal per criterion (``TranslateFamily`` stage) and then
        discharged sequentially by a single assumption-capable solver that
        retains learned clauses, VSIDS activities and saved phases between
        criteria (``SolveIncremental`` stage) — the warm-solver counterpart
        of :meth:`run_batch`'s cold multiprocess fan-out.  Results come back
        in criterion order; each carries the per-call incremental statistics
        (``result.incremental``) and, for ``verified`` verdicts, the
        criterion labels named by the assumption unsat core
        (``result.assumption_core``).  The family's verdict list is
        memoised, so an identical later call replays from the store.

        The first result row is billed the family translation time; the
        following rows ride on the shared artifact (0.0 translate seconds).
        Every row's ``cnf_vars`` / ``cnf_clauses`` describe the **shared
        family CNF** — the instance the warm solver actually worked on —
        not the size a stand-alone per-criterion translation would have.
        """
        backend = get_backend(solver)
        backend.validate_options(solver_options)
        if not (backend.incremental and backend.assumptions):
            raise ValueError(
                "solver %r cannot drive the incremental path: it lacks the "
                "incremental/assumptions capability flags (the CDCL-family "
                "backends have them); use run_batch instead" % (solver,)
            )
        options = options or TranslationOptions()
        criteria = list(criteria)
        if not criteria:
            return []
        if backend.theory:
            artifact, translate_seconds = self._skeleton_family_timed(
                criteria, options
            )
        else:
            artifact, translate_seconds = self._family_timed(criteria, options)
        family = artifact.family
        solve_key = (
            tuple(self.criterion_key(c) for c in criteria),
            translate_key(options),
            backend.name,
            seed,
            (time_limit, max_conflicts),
            tuple(sorted(solver_options.items())),
        )

        def solve_family() -> List[SolverResult]:
            # One SolveJob per criterion over the one shared CNF:
            # solve_batch's assumption grouping discharges them in order on
            # a single warm in-process engine (see repro.sat.batch).
            jobs = [
                SolveJob(
                    cnf=family.cnf,
                    solver=backend.name,
                    seed=seed,
                    time_limit=time_limit,
                    max_conflicts=max_conflicts,
                    options=dict(solver_options),
                    assumptions=(family.assumption(family_label),),
                    tag=display,
                )
                for display, family_label in artifact.entries
            ]
            return solve_batch(jobs)

        records, _seconds = self.store.get_or_build(
            SOLVE_INCREMENTAL, solve_key, solve_family
        )

        display_by_family = {fam: display for display, fam in artifact.entries}
        results = []
        for index, ((display, _family_label), record) in enumerate(
            zip(artifact.entries, records)
        ):
            packaged = self._package(
                record,
                artifact.translations[index],
                family.cnf,
                translate_seconds if index == 0 else 0.0,
                record.stats.time_seconds,
                display,
            )
            if record.core is not None:
                packaged.assumption_core = [
                    display_by_family.get(label, label)
                    for label in family.core_labels(record.core)
                ]
            packaged.incremental = {
                "solve_calls": record.stats.solve_calls,
                "kept_learned_clauses": record.stats.kept_learned_clauses,
                "core_size": record.stats.core_size,
                "conflicts": record.stats.conflicts,
                "shared_subterms": family.shared_subterms,
            }
            results.append(packaged)
        return results

    # ------------------------------------------------------------------
    def stage_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage cache hit/miss counters and build times."""
        return self.store.stats()

    # ------------------------------------------------------------------
    def _solve_key(
        self, criterion, options, backend: SolverBackend, seed, budget_key,
        solver_options,
    ):
        return (
            self.criterion_key(criterion),
            translate_key(options),
            backend.name,
            # Seed-insensitive backends (bdd) share one cache entry across
            # seeds — rerunning with a different seed would repeat identical
            # work.
            seed if backend.supports_seed else None,
            budget_key,
            tuple(sorted(solver_options.items())),
        )

    def _solve_digest(
        self, criterion, options, backend: SolverBackend, seed, budget_key,
        solver_options,
    ) -> str:
        """Persistent-tier digest of one Solve-stage configuration."""
        return self._content_digest(
            criterion,
            options,
            extra=(
                "solve",
                backend.name,
                seed if backend.supports_seed else None,
                budget_key,
                tuple(sorted(solver_options.items())),
            ),
        )

    def _default_label(self, criterion, options: TranslationOptions) -> str:
        label, _formula = _criterion_parts(criterion)
        if label and label != MONOLITHIC:
            return label
        return options.label()

    def _package(
        self,
        result: SolverResult,
        translation: TranslationResult,
        cnf: Optional[CNF],
        translate_seconds: float,
        solve_seconds: float,
        label: str,
    ) -> VerificationResult:
        counterexample = None
        if result.is_sat:
            named = None
            if cnf is not None:
                if result.assignment:
                    named = cnf.assignment_by_name(result.assignment)
            else:
                named = getattr(result, "named_assignment", None)
            if named is not None:
                counterexample = {
                    name: value
                    for name, value in named.items()
                    if not name.startswith("_")
                }
        packaged = VerificationResult(
            design=self.model.name,
            verdict=verdict_from_solver(result),
            solver_result=result,
            translation=translation,
            cnf_vars=cnf.num_vars if cnf is not None else 0,
            cnf_clauses=cnf.num_clauses if cnf is not None else 0,
            translate_seconds=translate_seconds,
            solve_seconds=solve_seconds,
            total_seconds=translate_seconds + solve_seconds,
            counterexample=counterexample,
            label=label,
        )
        # Snapshot of the store's counters at packaging time: this is how a
        # caller observes warm-cache runs (translation-stage hits, disk hits)
        # directly on the result instead of having to keep the pipeline.
        packaged.cache_stats = self.store.stats()
        return packaged
