"""The staged verification pipeline (tool-flow core).

The end-to-end flow ``processor model -> Burch–Dill formula -> UF
elimination -> domain encoding -> Tseitin CNF -> solver`` is decomposed into
five named stages, each memoised in an :class:`~repro.pipeline.ArtifactStore`
under a key combining the criterion and the subset of translation options the
stage actually depends on:

========================  ====================================================
stage                     artifact / key
========================  ====================================================
``BuildCorrectness``      EUFM formula, keyed by criterion
``EliminateUF``           memory/UF/UP-free formula, keyed by criterion +
                          (up_scheme, early_reduction, positive_equality)
``Encode``                Boolean formula + statistics, keyed by criterion +
                          the above + (encoding, add_transitivity)
``Translate``             Tseitin CNF, keyed like ``Encode``
``Solve``                 solver verdict, keyed like ``Translate`` +
                          (solver, seed, budget, solver options)
========================  ====================================================

A Table-1-style sweep over nine solvers therefore performs UF elimination,
encoding and CNF translation exactly once, and the decomposed criterion's
per-window checks fan out over worker processes through
:func:`repro.sat.solve_batch`.  Solver dispatch goes through the
:class:`~repro.sat.registry.SolverBackend` registry; backends that accept
Boolean formulae directly (the BDD evaluation of Fig. 7) skip the
``Translate`` stage and decide the encoded formula itself.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..boolean.cnf import CNF
from ..boolean.tseitin import to_cnf
from ..encoding.translator import (
    EliminationArtifact,
    TranslationOptions,
    TranslationResult,
    elimination_key,
    encode_eliminated,
    encoding_key,
    eliminate,
)
from ..eufm.terms import Formula
from ..hdl.machine import ProcessorModel
from ..sat.batch import SolveJob, solve_batch
from ..sat.registry import SolverBackend, get_backend
from ..sat.types import Budget, SolverResult
from .artifacts import ArtifactStore
from .result import VerificationResult, verdict_from_solver

#: Stage names (also the keys of :meth:`VerificationPipeline.stage_stats`).
BUILD_CORRECTNESS = "BuildCorrectness"
ELIMINATE_UF = "EliminateUF"
ENCODE = "Encode"
TRANSLATE = "Translate"
SOLVE = "Solve"

STAGES = (BUILD_CORRECTNESS, ELIMINATE_UF, ENCODE, TRANSLATE, SOLVE)

#: Key of the monolithic correctness criterion.
MONOLITHIC = "monolithic"


def _criterion_parts(criterion) -> Tuple[str, Optional[Formula]]:
    """Normalise a criterion argument to ``(label, formula-or-None)``.

    Accepts ``None`` (the monolithic criterion), a
    :class:`~repro.verify.decomposition.WeakCriterion`-like object with
    ``label`` / ``formula`` attributes, a bare EUFM formula, or a
    ``(label, formula)`` pair.
    """
    if criterion is None:
        return MONOLITHIC, None
    if hasattr(criterion, "formula") and hasattr(criterion, "label"):
        return criterion.label, criterion.formula
    if isinstance(criterion, tuple) and len(criterion) == 2:
        return criterion[0], criterion[1]
    return "", criterion


class VerificationPipeline:
    """Staged, memoising verification of one processor model.

    One pipeline is scoped to one model (and therefore one expression
    manager).  All entry points share the pipeline's artifact store, so
    repeated runs with overlapping configurations — solver sweeps, parameter
    variations, decomposed windows — rebuild only the stages whose inputs
    changed.
    """

    def __init__(
        self, model: ProcessorModel, store: Optional[ArtifactStore] = None
    ) -> None:
        self.model = model
        self.store = store or ArtifactStore()

    # ------------------------------------------------------------------
    # Stage accessors (each memoised in the artifact store)
    # ------------------------------------------------------------------
    def criterion_key(self, criterion=None) -> Hashable:
        label, formula = _criterion_parts(criterion)
        if formula is None:
            return MONOLITHIC
        # Formulae are hash-consed per manager, so the uid identifies the
        # criterion structurally within this pipeline's expression space.
        return (label, formula.uid)

    def correctness(self, criterion=None) -> Formula:
        """``BuildCorrectness``: the EUFM formula of the requested criterion."""
        formula, _seconds = self._correctness_timed(criterion)
        return formula

    def _correctness_timed(self, criterion) -> Tuple[Formula, float]:
        label, formula = _criterion_parts(criterion)

        def build() -> Formula:
            if formula is not None:
                return formula
            # Imported lazily: repro.verify imports the pipeline package.
            from ..verify.burch_dill import correctness_formula

            return correctness_formula(self.model)

        return self.store.get_or_build(
            BUILD_CORRECTNESS, self.criterion_key(criterion), build
        )

    def eliminated(
        self, options: Optional[TranslationOptions] = None, criterion=None
    ) -> EliminationArtifact:
        """``EliminateUF``: memory/UF/UP elimination of the criterion."""
        artifact, _seconds = self._eliminated_timed(options or TranslationOptions(), criterion)
        return artifact

    def _eliminated_timed(self, options, criterion):
        formula, build_seconds = self._correctness_timed(criterion)
        key = (self.criterion_key(criterion),) + elimination_key(options)
        artifact, seconds = self.store.get_or_build(
            ELIMINATE_UF, key, lambda: eliminate(self.model.manager, formula, options)
        )
        return artifact, build_seconds + seconds

    def encoded(
        self, options: Optional[TranslationOptions] = None, criterion=None
    ) -> TranslationResult:
        """``Encode``: Boolean formula of the criterion plus statistics."""
        translation, _seconds = self._encoded_timed(options or TranslationOptions(), criterion)
        return translation

    def _encoded_timed(self, options, criterion):
        artifact, upstream_seconds = self._eliminated_timed(options, criterion)
        key = (self.criterion_key(criterion),) + encoding_key(options)
        translation, seconds = self.store.get_or_build(
            ENCODE,
            key,
            lambda: encode_eliminated(self.model.manager, artifact, options),
        )
        return translation, upstream_seconds + seconds

    def cnf(
        self, options: Optional[TranslationOptions] = None, criterion=None
    ) -> CNF:
        """``Translate``: Tseitin CNF asserting the criterion's complement."""
        cnf, _tr, _seconds = self._cnf_timed(options or TranslationOptions(), criterion)
        return cnf

    def _cnf_timed(self, options, criterion):
        translation, upstream_seconds = self._encoded_timed(options, criterion)
        key = (self.criterion_key(criterion),) + encoding_key(options)
        cnf, seconds = self.store.get_or_build(
            TRANSLATE,
            key,
            lambda: to_cnf(translation.bool_formula, assert_value=False),
        )
        return cnf, translation, upstream_seconds + seconds

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def run(
        self,
        solver: str = "chaff",
        options: Optional[TranslationOptions] = None,
        criterion=None,
        time_limit: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_flips: Optional[int] = None,
        seed: int = 0,
        label: str = "",
        **solver_options,
    ) -> VerificationResult:
        """Run the full pipeline for one solver/criterion/option configuration.

        The solver name and options are validated eagerly — before any
        translation work — against the backend registry.
        """
        backend = get_backend(solver)
        backend.validate_options(solver_options)
        options = options or TranslationOptions()
        solve_key = self._solve_key(
            criterion, options, backend, seed,
            (time_limit, max_conflicts, max_flips), solver_options,
        )

        if backend.accepts_formula and backend.formula_solver is not None:
            translation, translate_seconds = self._encoded_timed(options, criterion)
            cnf = None
        else:
            cnf, translation, translate_seconds = self._cnf_timed(options, criterion)

        def solve_now() -> SolverResult:
            if cnf is None:
                return backend.formula_solver(
                    translation.bool_formula, time_limit=time_limit, **solver_options
                )
            budget = Budget(
                time_limit=time_limit,
                max_conflicts=max_conflicts,
                max_flips=max_flips,
            )
            return backend.solve(cnf, seed=seed, budget=budget, **solver_options)

        solve_started = time.perf_counter()
        result, _cached_seconds = self.store.get_or_build(SOLVE, solve_key, solve_now)
        # Report the solver's recorded effort so replayed (cache-hit) results
        # carry the same solve time as the original run; fall back to the
        # wall clock for engines that do not stamp their stats.
        solve_seconds = result.stats.time_seconds or (
            time.perf_counter() - solve_started
        )
        return self._package(
            result,
            translation,
            cnf,
            translate_seconds,
            solve_seconds,
            label or self._default_label(criterion, options),
        )

    def run_sweep(
        self,
        solvers: Sequence[str],
        options: Optional[TranslationOptions] = None,
        criterion=None,
        time_limit: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_flips: Optional[int] = None,
        seed: int = 0,
        **solver_options,
    ) -> List[VerificationResult]:
        """Run several solvers on one criterion, reusing every artifact.

        This is the Table-1 shape: UF elimination, encoding and CNF
        translation happen once; only the ``Solve`` stage runs per solver.
        """
        return [
            self.run(
                solver=solver,
                options=options,
                criterion=criterion,
                time_limit=time_limit,
                max_conflicts=max_conflicts,
                max_flips=max_flips,
                seed=seed,
                **solver_options,
            )
            for solver in solvers
        ]

    def run_batch(
        self,
        criteria: Sequence,
        solver: str = "chaff",
        options: Optional[TranslationOptions] = None,
        time_limit: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_flips: Optional[int] = None,
        seed: int = 0,
        max_workers: Optional[int] = None,
        **solver_options,
    ) -> List[VerificationResult]:
        """Check several criteria with one solver, fanning solves out.

        Translation runs in-process (artifacts are shared with every other
        entry point); the per-criterion CNF solves are distributed over
        worker processes via :func:`repro.sat.solve_batch`.  Results are
        returned in criterion order.  Backends that consume formulae directly
        (``bdd``) run inline instead.
        """
        backend = get_backend(solver)
        backend.validate_options(solver_options)
        options = options or TranslationOptions()
        if backend.accepts_formula:
            # Formula solvers honour the wall-clock budget only (see the
            # formula_solver protocol); the other budgets are still threaded
            # through so the Solve cache key reflects them.
            return [
                self.run(
                    solver=solver,
                    options=options,
                    criterion=criterion,
                    time_limit=time_limit,
                    max_conflicts=max_conflicts,
                    max_flips=max_flips,
                    seed=seed,
                    **solver_options,
                )
                for criterion in criteria
            ]

        budget_key = (time_limit, max_conflicts, max_flips)
        prepared = []
        for criterion in criteria:
            cnf, translation, translate_seconds = self._cnf_timed(options, criterion)
            label, _formula = _criterion_parts(criterion)
            solve_key = self._solve_key(
                criterion, options, backend, seed, budget_key, solver_options
            )
            prepared.append((cnf, translation, translate_seconds, label, solve_key))

        # Fan only the criteria without a cached verdict out to the workers;
        # completed batch solves join the Solve stage's artifact store so
        # later run()/run_batch() calls with the same configuration replay
        # them instead of re-solving.
        pending = [
            entry
            for entry in prepared
            if not self.store.contains(SOLVE, entry[4])
        ]
        jobs = [
            SolveJob(
                cnf=cnf,
                solver=solver,
                seed=seed,
                time_limit=time_limit,
                max_conflicts=max_conflicts,
                max_flips=max_flips,
                options=dict(solver_options),
                tag=label,
            )
            for cnf, _translation, _seconds, label, _key in pending
        ]
        batch_results = dict(
            zip(
                (entry[4] for entry in pending),
                solve_batch(jobs, max_workers=max_workers),
            )
        )
        # Fold the workers' solve effort into the Solve-stage counter: the
        # in-process builder below only hands the precomputed result over,
        # so the store would otherwise record ~0 build seconds for solves
        # that really happened.
        self.store.counters(SOLVE).build_seconds += sum(
            result.stats.time_seconds for result in batch_results.values()
        )
        packaged = []
        for cnf, translation, translate_seconds, label, solve_key in prepared:
            result, _seconds = self.store.get_or_build(
                SOLVE, solve_key, lambda key=solve_key: batch_results[key]
            )
            packaged.append(
                self._package(
                    result,
                    translation,
                    cnf,
                    translate_seconds,
                    result.stats.time_seconds,
                    label or self._default_label(None, options),
                )
            )
        return packaged

    # ------------------------------------------------------------------
    def stage_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage cache hit/miss counters and build times."""
        return self.store.stats()

    # ------------------------------------------------------------------
    def _solve_key(
        self, criterion, options, backend: SolverBackend, seed, budget_key,
        solver_options,
    ):
        return (
            self.criterion_key(criterion),
            encoding_key(options),
            backend.name,
            # Seed-insensitive backends (bdd) share one cache entry across
            # seeds — rerunning with a different seed would repeat identical
            # work.
            seed if backend.supports_seed else None,
            budget_key,
            tuple(sorted(solver_options.items())),
        )

    def _default_label(self, criterion, options: TranslationOptions) -> str:
        label, _formula = _criterion_parts(criterion)
        if label and label != MONOLITHIC:
            return label
        return options.label()

    def _package(
        self,
        result: SolverResult,
        translation: TranslationResult,
        cnf: Optional[CNF],
        translate_seconds: float,
        solve_seconds: float,
        label: str,
    ) -> VerificationResult:
        counterexample = None
        if result.is_sat:
            named = None
            if cnf is not None:
                if result.assignment:
                    named = cnf.assignment_by_name(result.assignment)
            else:
                named = getattr(result, "named_assignment", None)
            if named is not None:
                counterexample = {
                    name: value
                    for name, value in named.items()
                    if not name.startswith("_")
                }
        return VerificationResult(
            design=self.model.name,
            verdict=verdict_from_solver(result),
            solver_result=result,
            translation=translation,
            cnf_vars=cnf.num_vars if cnf is not None else 0,
            cnf_clauses=cnf.num_clauses if cnf is not None else 0,
            translate_seconds=translate_seconds,
            solve_seconds=solve_seconds,
            total_seconds=translate_seconds + solve_seconds,
            counterexample=counterexample,
            label=label,
        )
