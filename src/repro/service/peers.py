"""Node-to-node cache peering: fetch sha256-addressed artifacts from peers.

Every worker node keeps its own :class:`~repro.pipeline.DiskCache`, and the
keys of the expensive stages (``Translate`` CNFs, decided ``Solve`` results)
are *content digests* — sha256 over canonical serialisations.  That makes
peering a pure fetch problem: an artifact either exists somewhere under its
digest or it does not, and no invalidation protocol is needed because a
digest can never map to two different payloads.

On a local disk miss the :class:`PeerCacheClient` (installed into the
node's ``DiskCache`` via :func:`~repro.pipeline.register_peer_fetcher`)
asks the artifact's **owner** node — the HRW winner among all cluster
nodes for that digest, the node most likely to have built it — over the
``GET /cache?stage=&digest=`` endpoint.  A hit is checksum-verified
(sha256 of the payload must match the envelope's ``sha256`` field — a
truncated or bit-flipped transfer degrades to a miss and a local
recompute, never a poisoned cache) and then written through to the local
disk tier so the next miss is local.

Only ``PEERED_STAGES`` participate.  ``ServiceJobs`` records are
deliberately excluded: job ids are scoped to one scheduler, not
content-addressed across nodes.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Dict, Optional, Sequence, Tuple
from urllib import request as urllib_request
from urllib.parse import quote

from .registry import rendezvous_rank

#: Disk stages whose entries may be served to / fetched from peer nodes.
#: All are content-addressed and expensive to rebuild; everything else
#: (job records, telemetry) stays node-local.  ``clause_vault`` lets a
#: node pre-seed its clause-sharing hubs from clauses a peer already
#: learned on the same CNF fingerprint (see repro.exec.exchange).
PEERED_STAGES = frozenset({"Translate", "Solve", "clause_vault"})


def payload_checksum(payload: str) -> str:
    """The transfer checksum of a cache payload (sha256 hex of UTF-8)."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PeerCacheClient:
    """Fetches content-addressed cache entries from the owning peer node.

    ``peers`` is the full cluster table ``[(node_id, url), ...]``
    *including this node itself* — HRW ownership must be computed over the
    same node set everywhere, and ``self`` owning a digest simply means
    there is nobody better to ask (the local miss is final).
    """

    def __init__(
        self,
        self_id: str,
        peers: Sequence[Tuple[str, str]],
        timeout: float = 5.0,
    ) -> None:
        self.self_id = str(self_id)
        self.peers: Dict[str, str] = {
            str(node_id): str(url).rstrip("/") for node_id, url in peers
        }
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "hits": 0,
            "misses": 0,
            "corrupt": 0,
            "errors": 0,
        }

    def _bump(self, counter: str) -> None:
        with self._lock:
            self._counters[counter] += 1

    # ------------------------------------------------------------------
    def owner_of(self, digest: str) -> Optional[str]:
        """The peer node id owning ``digest``, or ``None`` when it is us."""
        if not self.peers:
            return None
        ranked = rendezvous_rank(self.peers, digest)
        return None if ranked[0] == self.self_id else ranked[0]

    def fetch(self, stage: str, digest: str) -> Optional[str]:
        """The payload for ``(stage, digest)`` from its owner, or ``None``.

        Returns ``None`` (a plain cache miss) when the stage is not peered,
        we own the digest ourselves, the owner does not have it either, the
        owner is unreachable, or the transferred bytes fail the checksum.
        """
        if stage not in PEERED_STAGES:
            return None
        owner = self.owner_of(digest)
        if owner is None:
            return None
        self._bump("requests")
        url = "%s/cache?stage=%s&digest=%s" % (
            self.peers[owner], quote(stage), quote(digest)
        )
        try:
            with urllib_request.urlopen(url, timeout=self.timeout) as reply:
                envelope = json.loads(reply.read().decode("utf-8"))
        except Exception:
            # 404 (owner missed too) and connection errors both land here;
            # either way the caller recomputes locally.
            self._bump("misses")
            return None
        payload = envelope.get("payload")
        if not isinstance(payload, str) or (
            payload_checksum(payload) != envelope.get("sha256")
        ):
            self._bump("corrupt")
            return None
        self._bump("hits")
        return payload

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
        counters["self_id"] = self.self_id
        counters["peers"] = sorted(
            node_id for node_id in self.peers if node_id != self.self_id
        )
        return counters
