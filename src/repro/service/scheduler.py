"""Priority + fair-share job scheduler of the verification service.

Submitted :class:`~repro.service.VerifyJob` s wait in per-``(priority,
tenant)`` FIFO queues.  The dispatch rule, applied every time a worker
thread goes looking for work:

1. **Priority first** — the highest priority class with any queued job is
   served before lower classes (a CI gate can jump a bulk fuzz sweep);
2. **Fair share within a class** — among that class' tenants, the one that
   has consumed the *least accumulated execution time* goes next, so a
   tenant flooding the queue with a thousand grid configs cannot starve a
   tenant submitting one job (its backlog just waits its turn each cycle);
3. FIFO within a tenant.

Execution happens on a small crew of daemon worker threads; the actual
solver parallelism lives below, in the shared persistent
:class:`~repro.exec.WorkerPool`, so scheduler workers are cheap
(translation + coordination) and a handful is enough to keep every pool
worker busy.  Completed records go to the :class:`~repro.service.ResultStore`.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from typing import Callable, Dict, List, Optional

from .jobs import DONE, FAILED, QUEUED, RUNNING, VerifyJob


class Scheduler:
    """Queues, prioritises and executes verification jobs.

    ``execute`` is the job body — ``execute(job) -> record dict`` (the
    service passes :func:`~repro.service.execute_verify_job` bound to its
    cache directory); it runs on scheduler worker threads and its failures
    mark the job ``failed`` instead of killing the worker.
    """

    def __init__(
        self,
        execute: Callable[[VerifyJob], Dict[str, object]],
        workers: int = 2,
        store=None,
        max_records: int = 1000,
    ) -> None:
        self._execute = execute
        self._requested_workers = max(1, workers)
        self.store = store
        #: finished records kept in memory (final states also live on the
        #: store's disk tier, so evicted ones remain queryable).
        self._max_records = max(1, max_records)
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        #: priority -> tenant -> deque of job ids (insertion-ordered dicts
        #: keep the dispatch scan deterministic).
        self._queues: Dict[int, "OrderedDict[str, deque]"] = {}
        self._jobs: Dict[str, Dict[str, object]] = {}
        #: accumulated execution seconds per tenant (the fair-share meter).
        self._tenant_used: Dict[str, float] = {}
        self._seq = itertools.count(1)
        self._threads: List[threading.Thread] = []
        self._started = False
        self._closed = False
        self._idle_workers = 0
        self._drained = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self._requested_workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name="repro-scheduler-%d" % index,
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def shutdown(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop the crew; ``drain`` lets queued jobs finish first."""
        deadline = time.monotonic() + timeout
        with self._lock:
            if drain:
                while (self._queued_count_locked() or self._running_count_locked()):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._drained.wait(remaining)
            self._closed = True
            self._work_available.notify_all()
        for thread in self._threads:
            thread.join(max(0.1, deadline - time.monotonic()))

    # ------------------------------------------------------------------
    # Submission and status
    # ------------------------------------------------------------------
    def submit(self, job: VerifyJob) -> str:
        """Validate, enqueue and return the job id."""
        job.validate()
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is shut down")
            seq = next(self._seq)
            job_id = self._job_id(job, seq)
            record = {
                "id": job_id,
                "seq": seq,
                "state": QUEUED,
                "job": job.to_dict(),
                "submitted_at": time.time(),
                "started_at": None,
                "finished_at": None,
                "error": None,
                "result": None,
            }
            self._jobs[job_id] = record
            tenants = self._queues.setdefault(job.priority, OrderedDict())
            tenants.setdefault(job.tenant, deque()).append(job_id)
            # Snapshot under the lock: a worker thread may start mutating
            # the live record the moment it is queued.
            stored = dict(record)
            self._work_available.notify()
        if self.store is not None:
            try:
                self.store.put(stored)
            except Exception:
                pass  # a broken disk tier must not fail the submission
        return job_id

    @staticmethod
    def _job_id(job: VerifyJob, seq: int) -> str:
        import hashlib
        import json

        digest = hashlib.sha256()
        digest.update(("%d\x1f" % seq).encode())
        digest.update(json.dumps(job.to_dict(), sort_keys=True).encode())
        return digest.hexdigest()[:32]

    def status(self, job_id: str) -> Optional[Dict[str, object]]:
        """The job's record (a copy), from memory or the result store."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is not None:
                return dict(record)
        if self.store is not None:
            return self.store.get(job_id)
        return None

    def jobs(self) -> List[Dict[str, object]]:
        """All known records, newest first (compact view)."""
        with self._lock:
            records = sorted(
                self._jobs.values(), key=lambda r: r["seq"], reverse=True
            )
            return [
                {
                    "id": r["id"],
                    "state": r["state"],
                    "design": r["job"]["design"],
                    "tenant": r["job"]["tenant"],
                    "priority": r["job"]["priority"],
                    "verdict": (r["result"] or {}).get("verdict"),
                }
                for r in records
            ]

    def stats(self) -> Dict[str, object]:
        with self._lock:
            states: Dict[str, int] = {}
            for record in self._jobs.values():
                states[record["state"]] = states.get(record["state"], 0) + 1
            return {
                "queued": self._queued_count_locked(),
                "running": self._running_count_locked(),
                "states": states,
                "tenants": {
                    tenant: round(used, 4)
                    for tenant, used in sorted(self._tenant_used.items())
                },
                "workers": len(self._threads),
            }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _queued_count_locked(self) -> int:
        return sum(
            len(queue)
            for tenants in self._queues.values()
            for queue in tenants.values()
        )

    def _running_count_locked(self) -> int:
        return sum(
            1 for record in self._jobs.values() if record["state"] == RUNNING
        )

    def _evict_finished_locked(self) -> None:
        """Bound the in-memory history: drop the oldest *finished* records.

        Queued and running records are never evicted; final states were
        persisted by the store, so :meth:`status` still answers for them
        through its disk fallback.
        """
        overflow = len(self._jobs) - self._max_records
        if overflow <= 0:
            return
        finished = sorted(
            (r["seq"], job_id)
            for job_id, r in self._jobs.items()
            if r["state"] in (DONE, FAILED)
        )
        for _seq, job_id in finished[:overflow]:
            del self._jobs[job_id]

    def _pop_next_locked(self) -> Optional[str]:
        """Apply the dispatch rule; returns a job id or ``None``."""
        for priority in sorted(self._queues, reverse=True):
            tenants = self._queues[priority]
            candidates = [t for t, queue in tenants.items() if queue]
            if not candidates:
                continue
            tenant = min(
                candidates, key=lambda t: (self._tenant_used.get(t, 0.0), t)
            )
            queue = tenants[tenant]
            job_id = queue.popleft()
            if not queue:
                del tenants[tenant]
            if not tenants:
                del self._queues[priority]
            return job_id
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                job_id = self._pop_next_locked()
                while job_id is None:
                    if self._closed:
                        return
                    self._work_available.wait(0.1)
                    job_id = self._pop_next_locked()
                record = self._jobs[job_id]
                record["state"] = RUNNING
                record["started_at"] = time.time()
                job = VerifyJob.from_dict(dict(record["job"]))
            started = time.perf_counter()
            result = None
            error = None
            try:
                result = self._execute(job)
            except Exception as exc:
                error = "%s: %s" % (type(exc).__name__, exc)
            elapsed = time.perf_counter() - started
            with self._lock:
                self._tenant_used[job.tenant] = (
                    self._tenant_used.get(job.tenant, 0.0) + elapsed
                )
                record["finished_at"] = time.time()
                record["seconds"] = round(elapsed, 4)
                if error is None:
                    record["state"] = DONE
                    record["result"] = result
                else:
                    record["state"] = FAILED
                    record["error"] = error
                stored = dict(record)
                self._evict_finished_locked()
                self._drained.notify_all()
            if self.store is not None:
                try:
                    self.store.put(stored)
                except Exception:
                    pass  # a broken disk tier must not fail the job
