"""Cluster node registry and rendezvous (HRW) job routing.

The coordinator routes every submitted job to one worker node by **highest
random weight** (rendezvous) hashing: each ``(node id, routing key)`` pair
is scored with sha256 and the live node with the highest score owns the
key.  Rendezvous hashing gives the two properties the cluster needs:

* **affinity** — the same routing key always lands on the same node while
  that node is alive, so the warm incremental engines a node built for a
  CNF keep serving every later job on that CNF (cross-request affinity one
  level above the :class:`~repro.exec.WorkerPool`'s per-worker pinning);
* **minimal disruption** — when a node dies, only the keys it owned move
  (each to its second-ranked node); every other key keeps its warm node,
  unlike modulo hashing which reshuffles almost everything.

The routing key is :func:`routing_fingerprint`: a content digest over the
job fields that determine the translated CNF (design, bugs, encoding,
decomposition width).  Two jobs with the same fingerprint translate to the
same formula — the fingerprint is a cheap, submission-time proxy for the
:func:`~repro.pipeline.fingerprint.cnf_digest` the pool keys warm engines
on, computable without doing the translation on the coordinator.

The same HRW ranking over *artifact* digests defines which node owns a
content-addressed cache entry, which is what the cache peer protocol
(:mod:`repro.service.peers`) asks first on a local miss.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..pipeline.fingerprint import content_digest


def rendezvous_score(node_id: str, key: str) -> int:
    """The HRW score of ``node_id`` for ``key`` (bigger wins).

    sha256 over the pair — never Python ``hash()``, which is salted per
    process: the coordinator, every node and every test must rank nodes
    identically for the same key.
    """
    digest = hashlib.sha256(
        ("hrw\x1f%s\x1f%s" % (node_id, key)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:16], "big")


def rendezvous_rank(node_ids: Iterable[str], key: str) -> List[str]:
    """Node ids ordered by descending HRW score for ``key``.

    The first entry is the key's owner; the rest are the deterministic
    failover order a job follows when nodes die mid-flight.
    """
    return sorted(
        node_ids, key=lambda node_id: rendezvous_score(node_id, key),
        reverse=True,
    )


def routing_fingerprint(job) -> str:
    """The affinity routing key of one :class:`~repro.service.VerifyJob`.

    Covers exactly the fields the translated CNF depends on — design spec,
    injected bugs, encoding, decomposition width — and deliberately
    excludes solver, seed, budget, priority and tenant: racing a second
    backend (or re-running with a longer budget) over the same formula
    should land on the node already holding that formula's warm engines.
    """
    return content_digest(
        (
            "route",
            job.design,
            tuple(sorted(job.bugs or ())),
            job.encoding,
            job.decompose,
        )
    )


@dataclass
class NodeInfo:
    """One worker node as the coordinator sees it."""

    id: str
    url: str
    alive: bool = True
    #: consecutive connection failures (reset by any successful call).
    strikes: int = 0
    jobs_routed: int = 0
    jobs_completed: int = 0
    #: jobs requeued elsewhere because this node died holding them.
    jobs_lost: int = 0
    marked_dead_at: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "url": self.url,
            "alive": self.alive,
            "strikes": self.strikes,
            "jobs_routed": self.jobs_routed,
            "jobs_completed": self.jobs_completed,
            "jobs_lost": self.jobs_lost,
        }


class NodeRegistry:
    """Thread-safe table of worker nodes with HRW owner selection."""

    def __init__(self, nodes: Sequence[Tuple[str, str]] = ()) -> None:
        self._lock = threading.Lock()
        self._nodes: "Dict[str, NodeInfo]" = {}
        for node_id, url in nodes:
            self.add(node_id, url)

    # ------------------------------------------------------------------
    def add(self, node_id: str, url: str) -> NodeInfo:
        with self._lock:
            node = NodeInfo(id=str(node_id), url=str(url).rstrip("/"))
            self._nodes[node.id] = node
            return node

    def get(self, node_id: str) -> Optional[NodeInfo]:
        with self._lock:
            return self._nodes.get(node_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    def ids(self) -> List[str]:
        with self._lock:
            return sorted(self._nodes)

    def alive_ids(self) -> List[str]:
        with self._lock:
            return sorted(n.id for n in self._nodes.values() if n.alive)

    def dead_nodes(self) -> List[NodeInfo]:
        with self._lock:
            return [n for n in self._nodes.values() if not n.alive]

    # ------------------------------------------------------------------
    def owner(
        self, key: str, exclude: Iterable[str] = ()
    ) -> Optional[NodeInfo]:
        """The highest-ranked live node for ``key`` not in ``exclude``."""
        excluded = set(exclude)
        with self._lock:
            candidates = [
                n.id
                for n in self._nodes.values()
                if n.alive and n.id not in excluded
            ]
            if not candidates:
                return None
            return self._nodes[rendezvous_rank(candidates, key)[0]]

    def mark_dead(self, node_id: str) -> None:
        with self._lock:
            node = self._nodes.get(node_id)
            if node is not None and node.alive:
                node.alive = False
                node.marked_dead_at = time.time()

    def mark_alive(self, node_id: str) -> None:
        with self._lock:
            node = self._nodes.get(node_id)
            if node is not None:
                node.alive = True
                node.strikes = 0
                node.marked_dead_at = None

    def record_routed(self, node_id: str) -> None:
        with self._lock:
            node = self._nodes.get(node_id)
            if node is not None:
                node.jobs_routed += 1

    def record_completed(self, node_id: str) -> None:
        with self._lock:
            node = self._nodes.get(node_id)
            if node is not None:
                node.jobs_completed += 1

    def record_lost(self, node_id: str) -> None:
        with self._lock:
            node = self._nodes.get(node_id)
            if node is not None:
                node.jobs_lost += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, object]]:
        """Stable-ordered table of every node (the ``/nodes`` payload)."""
        with self._lock:
            return [
                self._nodes[node_id].as_dict()
                for node_id in sorted(self._nodes)
            ]
