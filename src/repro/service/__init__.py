"""Verification service: job scheduler, result store and JSON-over-HTTP API.

``repro.service`` turns the verification stack into a long-lived,
multi-tenant service — the shape the ROADMAP's "heavy traffic" north star
asks for and the natural consumer of the persistent
:class:`~repro.exec.WorkerPool` (warm solver state only pays off when the
process serving requests survives them):

* :class:`VerifyJob` — one submitted verification request (design spec or
  ``gen:`` grid member, injected bugs, solver or portfolio, decomposition
  width, budget, priority, tenant), JSON-serialisable in both directions;
* :class:`Scheduler` — priority + fair-share queues over submitted jobs,
  executed by a small crew of worker threads that all share the process'
  warm worker pools and persistent artifact cache;
* :class:`ResultStore` — finished job records, in memory and (optionally)
  on the existing content-addressed :class:`~repro.pipeline.DiskCache`
  tier, so restarts keep history;
* :class:`VerificationService` / :func:`repro.service.server.serve` — the
  stdlib-only HTTP front end behind ``python -m repro serve`` /
  ``submit`` / ``status``.
"""

from .jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    VerifyJob,
    execute_verify_job,
    verdict_payload,
)
from .cluster import LocalCluster, run_cluster_smoke
from .coordinator import (
    AdmissionError,
    Coordinator,
    CoordinatorServer,
    serve_coordinator,
)
from .peers import PEERED_STAGES, PeerCacheClient, payload_checksum
from .registry import (
    NodeInfo,
    NodeRegistry,
    rendezvous_rank,
    rendezvous_score,
    routing_fingerprint,
)
from .scheduler import Scheduler
from .store import ResultStore
from .server import (
    ServiceBusy,
    ServiceClient,
    ServiceUnavailable,
    VerificationService,
    run_smoke,
    serve,
)

__all__ = [
    "AdmissionError",
    "Coordinator",
    "CoordinatorServer",
    "DONE",
    "FAILED",
    "LocalCluster",
    "NodeInfo",
    "NodeRegistry",
    "PEERED_STAGES",
    "PeerCacheClient",
    "QUEUED",
    "RUNNING",
    "ResultStore",
    "Scheduler",
    "ServiceBusy",
    "ServiceClient",
    "ServiceUnavailable",
    "VerificationService",
    "VerifyJob",
    "execute_verify_job",
    "payload_checksum",
    "rendezvous_rank",
    "rendezvous_score",
    "routing_fingerprint",
    "run_cluster_smoke",
    "run_smoke",
    "serve",
    "serve_coordinator",
    "verdict_payload",
]
