"""Local cluster launcher: one coordinator + N worker-node processes.

``python -m repro serve --nodes N`` builds a :class:`LocalCluster`: N
worker nodes (each a full :mod:`repro.service.server` with its own cache
directory, warm worker pool and ``REPRO_NODE_ID``) plus one coordinator
process-tree front door, all on loopback ephemeral ports.  It exists for
dev boxes and CI — the wire protocol is identical to a fleet of real
machines, so everything above it (clients, benchmarks, smoke tests) works
unchanged against either.

Nodes default to separate **processes** (fork), which is what makes the
cluster a real scaling experiment: each node has its own GIL, its own
engine LRU and its own disk cache, and peer-cache fetches cross real HTTP.
``mode="thread"`` runs the nodes in-process instead — cheaper and fully
deterministic for unit tests, same topology.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from .coordinator import Coordinator, CoordinatorServer
from .registry import NodeRegistry
from .server import DEFAULT_HOST, ServiceClient, serve

#: Environment variable giving ``serve`` its default ``--nodes``.
NODES_ENV = "REPRO_NODES"


def _node_main(
    node_id: str,
    host: str,
    cache_dir: str,
    workers: int,
    prune_max_mb: Optional[float],
    env: Dict[str, str],
    conn,
) -> None:
    """Worker-node process body: bind, report the address, serve forever."""
    os.environ.update(env)
    os.environ["REPRO_NODE_ID"] = node_id
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    server = serve(
        host=host,
        port=0,
        cache_dir=cache_dir,
        workers=workers,
        prune_max_mb=prune_max_mb,
        node_id=node_id,
    )
    conn.send(server.address)
    conn.close()
    server.serve_forever()


class LocalCluster:
    """N worker nodes plus a coordinator, launched locally.

    ``node_env`` is extra environment for the node processes (e.g.
    ``REPRO_POOL_ENGINES`` to size each node's warm-engine LRU — the knob
    the scaling benchmark turns).  Each node gets its own cache directory
    ``<root>/node-<i>`` — distinct stores are what makes cache peering
    real — and the coordinator persists its job records under
    ``<root>/coordinator``.
    """

    def __init__(
        self,
        nodes: int = 3,
        host: str = DEFAULT_HOST,
        port: int = 0,
        cache_dir: Optional[str] = None,
        node_workers: int = 2,
        coordinator_workers: int = 8,
        prune_max_mb: Optional[float] = None,
        node_env: Optional[Dict[str, str]] = None,
        mode: str = "process",
        **coordinator_kwargs,
    ) -> None:
        if nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if mode not in ("process", "thread"):
            raise ValueError("mode must be 'process' or 'thread'")
        self.n_nodes = nodes
        self.host = host
        self.port = port
        self.mode = mode
        self.node_workers = node_workers
        self.coordinator_workers = coordinator_workers
        self.prune_max_mb = prune_max_mb
        self.node_env = dict(node_env or {})
        self.coordinator_kwargs = coordinator_kwargs
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if cache_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            cache_dir = self._tmpdir.name
        self.cache_dir = cache_dir
        self.node_ids = ["node-%d" % index for index in range(nodes)]
        self.registry = NodeRegistry()
        self.server: Optional[CoordinatorServer] = None
        self._procs: Dict[str, object] = {}
        self._thread_servers: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def node_cache_dir(self, node_id: str) -> str:
        return os.path.join(self.cache_dir, node_id)

    @property
    def address(self) -> str:
        if self.server is None:
            raise RuntimeError("cluster is not started")
        return self.server.address

    # ------------------------------------------------------------------
    def start(self, timeout: float = 60.0) -> "LocalCluster":
        addresses = (
            self._start_process_nodes(timeout)
            if self.mode == "process"
            else self._start_thread_nodes()
        )
        peers: List[Tuple[str, str]] = list(addresses)
        for node_id, url in peers:
            self.registry.add(node_id, url)
            # Hand every node the full table so HRW cache ownership is
            # computed identically cluster-wide.
            ServiceClient(url, timeout=10.0).set_peers(node_id, peers)
        coordinator = Coordinator(
            self.registry,
            cache_dir=os.path.join(self.cache_dir, "coordinator"),
            workers=self.coordinator_workers,
            **self.coordinator_kwargs,
        )
        self.server = CoordinatorServer(
            coordinator, host=self.host, port=self.port
        )
        self.server.start()
        return self

    def _start_process_nodes(self, timeout: float) -> List[Tuple[str, str]]:
        import multiprocessing as mp

        # Default (fork on Linux): nodes inherit the warm import state and
        # bind in milliseconds; spawn would re-import the package per node.
        ctx = mp.get_context()
        addresses: List[Tuple[str, str]] = []
        for node_id in self.node_ids:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_node_main,
                args=(
                    node_id,
                    self.host,
                    self.node_cache_dir(node_id),
                    self.node_workers,
                    self.prune_max_mb,
                    self.node_env,
                    child_conn,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            if not parent_conn.poll(timeout):
                self.stop()
                raise RuntimeError("node %s did not come up" % node_id)
            addresses.append((node_id, parent_conn.recv()))
            parent_conn.close()
            self._procs[node_id] = proc
        return addresses

    def _start_thread_nodes(self) -> List[Tuple[str, str]]:
        addresses: List[Tuple[str, str]] = []
        for node_id in self.node_ids:
            server = serve(
                host=self.host,
                port=0,
                cache_dir=self.node_cache_dir(node_id),
                workers=self.node_workers,
                prune_max_mb=self.prune_max_mb,
                node_id=node_id,
            )
            server.start()
            self._thread_servers[node_id] = server
            addresses.append((node_id, server.address))
        return addresses

    # ------------------------------------------------------------------
    def kill_node(self, node_id: str) -> None:
        """Hard-kill one node (SIGKILL / socket close): the failover test."""
        proc = self._procs.pop(node_id, None)
        if proc is not None:
            proc.kill()
            proc.join(10)
            return
        server = self._thread_servers.pop(node_id, None)
        if server is not None:
            server.httpd.shutdown()
            server.httpd.server_close()

    def stop(self, drain: bool = True) -> None:
        if self.server is not None:
            self.server.stop(drain=drain)
            self.server = None
        for node_id, proc in list(self._procs.items()):
            node = self.registry.get(node_id)
            if node is not None:
                try:
                    ServiceClient(node.url, timeout=5.0, retries=0).shutdown()
                except Exception:
                    pass
            proc.join(10)
            if proc.is_alive():  # pragma: no cover - unclean node
                proc.terminate()
                proc.join(5)
        self._procs.clear()
        for server in self._thread_servers.values():
            server.stop(drain=False)
        self._thread_servers.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# CI smoke round-trip (the --nodes N --smoke path)
# ----------------------------------------------------------------------
def run_cluster_smoke(
    nodes: int = 3, verbose: bool = True, mode: str = "process"
) -> int:
    """Round-trip a mixed batch through a real local cluster.

    Same contract as :func:`~repro.service.run_smoke` one level up:
    concurrent HTTP clients against the coordinator, every served
    ``verdict_json`` byte-identical to a direct in-process run, plus the
    cluster-only checks — jobs actually spread across ≥ 2 nodes (HRW is
    deterministic, so this cannot flake) and the aggregated ``/healthz``
    sees every node alive.  Returns a process exit code.
    """
    from .jobs import VerifyJob, execute_verify_job
    from .server import SMOKE_SUBMISSIONS

    submissions = [dict(p) for p in SMOKE_SUBMISSIONS] + [
        {"design": "gen:depth=4,width=1", "time_limit": 120.0,
         "tenant": "smoke-a"},
        {"design": "gen:depth=3,width=2", "time_limit": 120.0,
         "tenant": "smoke-c"},
        {"design": "gen:depth=3,width=1", "bugs": ["omit-forward-wb-a"],
         "time_limit": 120.0, "tenant": "smoke-c"},
    ]
    import tempfile as _tempfile

    with _tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-") as workdir:
        cluster = LocalCluster(
            nodes=nodes,
            cache_dir="%s/cluster-cache" % workdir,
            mode=mode,
        )
        records: List[Optional[Dict[str, object]]] = [None] * len(submissions)
        errors: List[str] = []
        with cluster:
            url = cluster.address

            def client(index: int, payload: Dict[str, object]) -> None:
                try:
                    c = ServiceClient(url)
                    submitted = c.submit(payload)
                    records[index] = c.wait(submitted["id"], timeout=600.0)
                except Exception as exc:
                    errors.append("client %d: %s" % (index, exc))

            threads = [
                threading.Thread(
                    target=client, args=(i, dict(p)), daemon=True
                )
                for i, p in enumerate(submissions)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(600.0)
            wall = time.perf_counter() - started
            health = ServiceClient(url).healthz()

        if errors:
            for line in errors:
                print("cluster smoke FAIL: %s" % line)
            return 1
        failures = 0
        served_by: Dict[str, int] = {}
        for index, payload in enumerate(submissions):
            record = records[index]
            if record is None or record.get("state") != "done":
                print(
                    "cluster smoke FAIL: job %d did not finish: %r"
                    % (index, record)
                )
                failures += 1
                continue
            node = str(record["result"].get("node"))
            served_by[node] = served_by.get(node, 0) + 1
            served = record["result"]["verdict_json"]
            direct = execute_verify_job(
                VerifyJob.from_dict(dict(payload)),
                cache_dir="%s/direct-cache-%d" % (workdir, index),
            )["verdict_json"]
            identical = served == direct
            if verbose:
                print(
                    "cluster smoke %-28s node=%-8s verdict=%-8s "
                    "served==direct: %s"
                    % (
                        payload["design"],
                        node,
                        record["result"]["verdict"],
                        identical,
                    )
                )
            if not identical:
                print("  served: %s" % served[:200])
                print("  direct: %s" % direct[:200])
                failures += 1
        if nodes >= 2 and len(served_by) < 2:
            print(
                "cluster smoke FAIL: all jobs served by one node: %r"
                % served_by
            )
            failures += 1
        alive = health.get("alive_nodes") or []
        if len(alive) != nodes:
            print(
                "cluster smoke FAIL: %d/%d nodes alive: %r"
                % (len(alive), nodes, alive)
            )
            failures += 1
        if verbose:
            print(
                "cluster smoke: %d submissions over %d nodes in %.1fs "
                "(served_by %s)"
                % (len(submissions), nodes, wall, sorted(served_by.items()))
            )
        return 1 if failures else 0
