"""Service job records: submission schema, execution, canonical verdicts.

A :class:`VerifyJob` is the unit of service traffic: everything the CLI's
``verify`` / ``race`` subcommands can express — catalogue designs or
``gen:`` grid members, injected bugs, a single solver or a racing
portfolio, decomposition width, budget and seed — plus the scheduling
attributes (``priority``, ``tenant``) the :class:`~repro.service.Scheduler`
queues on.  Jobs serialise to plain JSON dictionaries in both directions,
which is also the HTTP submission format.

:func:`execute_verify_job` runs one job through the regular verification
entry points (so it shares the warm worker pools and the persistent
artifact cache with every other caller) and returns the stored record.
:func:`verdict_payload` renders the decision-relevant part of a result as
**canonical JSON** — sorted keys, no whitespace, no timings — which is what
"byte-identical verdicts" means for the service acceptance check: a
``serve``-d answer must render exactly like a direct
:func:`~repro.verify.verify_design` run of the same submission.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Design name -> model factory (a fresh expression manager per build).
_DESIGN_FACTORIES: Dict[str, Callable] = {}


def _design_factories() -> Dict[str, Callable]:
    if not _DESIGN_FACTORIES:
        from ..processors import (
            DLX1Processor,
            DLX2ExProcessor,
            DLX2Processor,
            Pipe3Processor,
            VLIWProcessor,
        )

        _DESIGN_FACTORIES.update(
            {
                "pipe3": Pipe3Processor,
                "dlx1": DLX1Processor,
                "dlx2": DLX2Processor,
                "dlx2-ex": DLX2ExProcessor,
                "vliw": VLIWProcessor,
            }
        )
    return _DESIGN_FACTORIES


def design_names() -> Tuple[str, ...]:
    """The catalogue design names (``gen:`` specs are accepted everywhere)."""
    return tuple(sorted(_design_factories()))


def resolve_design(design: str, bugs: Optional[List[str]] = None):
    """Instantiate a design by catalogue name or ``gen:`` spec.

    Raises ``ValueError`` for unknown names, malformed specs and unknown
    bug/mutation ids — the service maps these to failed jobs, the CLI to
    usage errors.
    """
    from ..eufm import ExprManager

    if design.startswith("gen:"):
        from ..gen import build_design

        return build_design(design, bugs=bugs or [])
    factory = _design_factories().get(design)
    if factory is None:
        raise ValueError(
            "unknown design %r; available: %s, or a generated family spec "
            "like gen:depth=5,width=2" % (design, ", ".join(design_names()))
        )
    return factory(ExprManager(), bugs=bugs or [])


@dataclass
class VerifyJob:
    """One submitted verification request."""

    design: str
    bugs: List[str] = field(default_factory=list)
    solver: str = "chaff"
    #: backend names to race instead of running ``solver`` alone.
    portfolio: Optional[List[str]] = None
    #: decomposed criterion with N parallel runs (0 = monolithic).
    decompose: int = 0
    encoding: str = "eij"
    time_limit: Optional[float] = None
    seed: int = 0
    #: larger runs earlier; ties share capacity fairly across tenants.
    priority: int = 0
    tenant: str = "default"

    #: job fields that are scheduling attributes, not verification options.
    _SCHEDULING_FIELDS = ("design", "bugs", "priority", "tenant")

    def verify_options(self):
        """The job's option fields as one :class:`~repro.verify.VerifyOptions`.

        This is how a job reaches the verification entry points: the
        service executes ``verify_design(model, job.verify_options())`` —
        the same consolidated record the CLI builds from its arguments —
        so an HTTP submission and a direct library call take the exact
        same code path.  A racing portfolio on a decomposed job selects
        the race execution shape, as the ``race`` CLI subcommand does.
        """
        from ..verify import VerifyOptions

        return VerifyOptions(
            solver=self.solver,
            portfolio=(
                list(self.portfolio) if self.portfolio is not None else None
            ),
            decompose=self.decompose,
            encoding=self.encoding,
            time_limit=self.time_limit,
            seed=self.seed,
            mode="race" if self.portfolio else None,
        )

    def validate(self) -> None:
        """Eager submission-time validation (raises ``ValueError``).

        Types are checked strictly: this is the HTTP boundary, and e.g. a
        string ``priority`` would otherwise poison the scheduler's queue
        keys (mixed-type sort) long after the submission was accepted.
        The option fields are validated by
        :meth:`~repro.verify.VerifyOptions.validate` — the same checks
        every other entry to the verification stack goes through.
        """
        if not isinstance(self.design, str) or not self.design:
            raise ValueError("job must name a design (or a gen: spec)")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ValueError(
                "priority must be an integer, got %r" % (self.priority,)
            )
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ValueError("tenant must be a non-empty string")
        if not all(isinstance(bug, str) for bug in self.bugs):
            raise ValueError("bugs must be a list of bug-id strings")
        self.verify_options().validate()

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "VerifyJob":
        """Build a job from an (HTTP) submission dictionary.

        Unknown keys raise — a mistyped field must not silently fall back
        to a default and verify the wrong configuration.  The option
        subset of the payload is parsed by
        :meth:`~repro.verify.VerifyOptions.from_dict`, the single schema
        shared with the CLI and the library entry points; the scheduling
        fields (design, bugs, priority, tenant) are job-specific.
        """
        from ..verify import VerifyOptions

        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                "unknown job field(s) %s; accepted: %s"
                % (", ".join(unknown), ", ".join(sorted(known)))
            )
        scheduling = {
            name: payload[name]
            for name in cls._SCHEDULING_FIELDS
            if name in payload
        }
        options = VerifyOptions.from_dict(
            {
                name: value
                for name, value in payload.items()
                if name not in cls._SCHEDULING_FIELDS
            }
        )
        job = cls(
            solver=options.solver,
            portfolio=options.portfolio,
            decompose=options.decompose,
            encoding=options.encoding,
            time_limit=options.time_limit,
            seed=options.seed,
            **scheduling,  # type: ignore[arg-type]
        )
        job.bugs = list(job.bugs or [])
        return job


def verdict_payload(results) -> str:
    """Canonical JSON of the decision-relevant part of a verification.

    ``results`` is one :class:`~repro.pipeline.result.VerificationResult`
    or a list of them (decomposed runs).  Timings, cache counters and race
    metadata are excluded on purpose: two runs of the same submission must
    produce byte-identical payloads regardless of machine load or cache
    temperature.

    Counterexample *models* are included only for single (monolithic)
    results, whose one-shot solves are seed-deterministic.  Decomposed
    windows are discharged on the pool's persistent warm engines, and a
    warmer engine may legitimately steer a ``sat`` search to a different
    satisfying assignment — the per-window verdicts are stable, the model
    bits are not, so they stay out of the byte-identity contract.
    """
    single = not isinstance(results, (list, tuple))
    items = [results] if single else list(results)
    rendered = []
    for result in items:
        counterexample = None
        if single and result.counterexample is not None:
            counterexample = {
                name: bool(value)
                for name, value in sorted(result.counterexample.items())
            }
        entry = {
            "design": result.design,
            "verdict": result.verdict,
            "label": result.label,
            "solver": result.solver_result.solver_name,
            "cnf_vars": result.cnf_vars,
            "cnf_clauses": result.cnf_clauses,
        }
        if single:
            entry["counterexample"] = counterexample
        rendered.append(entry)
    payload = rendered[0] if single else rendered
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def execute_verify_job(
    job: VerifyJob, cache_dir: Optional[str] = None
) -> Dict[str, object]:
    """Run one job and return its result record.

    The record carries the full ``summary`` (timings, race/cache metadata)
    next to the canonical ``verdict_json`` string; for decomposed jobs the
    overall verdict is scored with the paper's parallel-run semantics.
    """
    from ..verify import (
        score_parallel_runs,
        verify_design,
        verify_design_decomposed,
    )

    model = resolve_design(job.design, job.bugs)
    options = job.verify_options().replace(cache_dir=cache_dir)
    if options.decompose:
        results = verify_design_decomposed(model, options=options)
        overall = score_parallel_runs(results, hunting_bugs=bool(job.bugs))
        return {
            "verdict": overall.verdict,
            "verdict_json": verdict_payload(results),
            "summary": overall.summary(),
            "groups": [result.summary() for result in results],
        }
    result = verify_design(model, options=options)
    return {
        "verdict": result.verdict,
        "verdict_json": verdict_payload(result),
        "summary": result.summary(),
    }
