"""Finished-job records: in-memory index over the persistent cache tier.

The service's results ride on the same content-addressed
:class:`~repro.pipeline.DiskCache` that already persists Translate/Solve
artifacts — one more stage directory (``ServiceJobs``) whose entries are
canonical-JSON job records keyed by job id.  A restarted server therefore
still answers ``status`` queries for jobs finished by its predecessor, and
``python -m repro cache prune`` bounds the whole tier (artifacts *and*
records) with one LRU sweep.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from ..pipeline.artifacts import DiskCache

#: DiskCache stage directory holding the service's job records.
STAGE = "ServiceJobs"


class ResultStore:
    """Job records in memory (bounded LRU), mirrored to an optional disk tier.

    ``max_records`` bounds the in-memory index so a long-running service
    does not grow with its whole traffic history; evicted final records
    stay queryable through the disk tier.
    """

    def __init__(
        self, disk: Optional[DiskCache] = None, max_records: int = 1000
    ) -> None:
        self.disk = disk
        self._lock = threading.Lock()
        self._max_records = max(1, max_records)
        self._records: "OrderedDict[str, Dict[str, object]]" = OrderedDict()

    def put(self, record: Dict[str, object]) -> None:
        """Insert or update one record (persisted when it is final)."""
        job_id = str(record["id"])
        record = dict(record)
        with self._lock:
            self._records[job_id] = record
            self._records.move_to_end(job_id)
            while len(self._records) > self._max_records:
                self._records.popitem(last=False)
        # Only final states hit the disk: a queued/running record would be
        # stale the moment the server restarts.
        if self.disk is not None and record.get("state") in ("done", "failed"):
            self.disk.store(
                STAGE, job_id, json.dumps(record, sort_keys=True)
            )

    def get(self, job_id: str) -> Optional[Dict[str, object]]:
        """One record, consulting the disk tier on a memory miss."""
        with self._lock:
            record = self._records.get(job_id)
            if record is not None:
                self._records.move_to_end(job_id)
                return dict(record)
        if self.disk is not None:
            payload = self.disk.load(STAGE, job_id)
            if payload is not None:
                try:
                    record = json.loads(payload)
                except ValueError:
                    return None
                with self._lock:
                    self._records.setdefault(job_id, record)
                    while len(self._records) > self._max_records:
                        self._records.popitem(last=False)
                return dict(record)
        return None

    def ids(self) -> List[str]:
        with self._lock:
            return sorted(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
