"""Cluster coordinator: admission control, HRW routing, failover.

The coordinator speaks the *same* wire protocol as a single worker node
(:mod:`repro.service.server`) — clients cannot tell the difference — but
instead of executing jobs locally its scheduler workers **route** each job
to a worker node and relay the result:

1. **Admission** (``POST /submit``): per-tenant bounded queues.  A tenant
   with ``max_queued_per_tenant`` jobs already pending — or a cluster at
   ``max_queued_total`` — gets a ``429`` with a ``Retry-After`` header
   instead of an unbounded backlog.  Accepted jobs enter the same
   priority + fair-share :class:`~repro.service.Scheduler` a node uses,
   so tenant fairness is enforced *before* routing, cluster-wide.
2. **Routing**: the dispatch thread computes the job's
   :func:`~repro.service.registry.routing_fingerprint` and submits it to
   the rendezvous owner among live nodes, so every job on the same formula
   lands on the node whose warm incremental engines already hold that CNF.
3. **Failover**: the coordinator polls the node for the result.  A node
   that stops answering (``death_strikes`` consecutive connection
   failures, each already behind the client's own retry loop) is marked
   dead and the job is requeued on the next-ranked surviving node —
   bounded by ``max_attempts``, mirroring the
   :class:`~repro.exec.WorkerPool` crash/requeue semantics one level up.
   A node that *answers* with a failed record fails the job immediately:
   deterministic failures (unknown design, bad bug id) would fail
   identically everywhere.

Completed records flow through the coordinator's own
:class:`~repro.service.ResultStore`, so a restarted coordinator still
serves ``status``/``result`` for finished jobs from its disk tier.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..pipeline.artifacts import DiskCache
from .jobs import VerifyJob
from .registry import NodeRegistry, routing_fingerprint
from .scheduler import Scheduler
from .server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServiceClient,
    ServiceServer,
    ServiceUnavailable,
    _Handler,
)
from .store import ResultStore


class AdmissionError(RuntimeError):
    """Submission refused by backpressure; retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class _JobLost(Exception):
    """The routed node can no longer produce this job's result."""

    def __init__(self, node_id: str, reason: str, node_dead: bool) -> None:
        super().__init__(reason)
        self.node_id = node_id
        self.node_dead = node_dead


class Coordinator:
    """Routes jobs across a :class:`~repro.service.NodeRegistry`.

    Duck-types :class:`~repro.service.VerificationService` (``scheduler``,
    ``store``, ``submit``, ``healthz``) so it can sit behind the same HTTP
    handler and :class:`~repro.service.ServiceClient`.
    """

    def __init__(
        self,
        registry: NodeRegistry,
        cache_dir: Optional[str] = None,
        workers: int = 8,
        max_queued_per_tenant: int = 64,
        max_queued_total: int = 256,
        max_attempts: int = 3,
        death_strikes: int = 2,
        poll_timeout: float = 600.0,
        client_factory: Optional[Callable[[str], ServiceClient]] = None,
    ) -> None:
        self.registry = registry
        self.cache_dir = cache_dir
        disk = DiskCache(cache_dir) if cache_dir else None
        self.disk = disk
        self.store = ResultStore(disk)
        self.scheduler = Scheduler(
            self._execute, workers=workers, store=self.store
        )
        self.max_queued_per_tenant = max(1, max_queued_per_tenant)
        self.max_queued_total = max(1, max_queued_total)
        self.max_attempts = max(1, max_attempts)
        self.death_strikes = max(1, death_strikes)
        self.poll_timeout = poll_timeout
        self._client_factory = client_factory or (
            lambda url: ServiceClient(url, timeout=30.0)
        )
        self.started_at = time.time()
        self._admission_lock = threading.Lock()
        self._pending_by_tenant: Dict[str, int] = {}
        self._pending_total = 0
        self._rejected = 0
        self._requeues = 0

    # ------------------------------------------------------------------
    # Wire-protocol surface (duck-typing VerificationService)
    # ------------------------------------------------------------------
    def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        job = VerifyJob.from_dict(payload)
        job.validate()
        with self._admission_lock:
            pending = self._pending_by_tenant.get(job.tenant, 0)
            if self._pending_total >= self.max_queued_total:
                self._rejected += 1
                raise AdmissionError(
                    "cluster queue full (%d pending); retry later"
                    % self._pending_total,
                    retry_after=2.0,
                )
            if pending >= self.max_queued_per_tenant:
                self._rejected += 1
                raise AdmissionError(
                    "tenant %r has %d jobs pending (limit %d); retry later"
                    % (job.tenant, pending, self.max_queued_per_tenant),
                    retry_after=1.0,
                )
            self._pending_by_tenant[job.tenant] = pending + 1
            self._pending_total += 1
        try:
            job_id = self.scheduler.submit(job)
        except BaseException:
            self._release(job.tenant)
            raise
        return {"id": job_id, "state": "queued"}

    def _release(self, tenant: str) -> None:
        with self._admission_lock:
            self._pending_by_tenant[tenant] = max(
                0, self._pending_by_tenant.get(tenant, 1) - 1
            )
            self._pending_total = max(0, self._pending_total - 1)

    def cache_entry(self, stage: str, digest: str) -> Optional[str]:
        return None  # the coordinator holds no artifacts; nodes peer directly

    def healthz(self) -> Dict[str, object]:
        with self._admission_lock:
            admission = {
                "pending_total": self._pending_total,
                "pending_by_tenant": {
                    tenant: count
                    for tenant, count in sorted(
                        self._pending_by_tenant.items()
                    )
                    if count
                },
                "rejected": self._rejected,
                "requeues": self._requeues,
                "max_queued_per_tenant": self.max_queued_per_tenant,
                "max_queued_total": self.max_queued_total,
            }
        payload: Dict[str, object] = {
            "ok": True,
            "role": "coordinator",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "scheduler": self.scheduler.stats(),
            "admission": admission,
            "cache_dir": self.cache_dir,
            "nodes": self.registry.snapshot(),
        }
        # Best-effort per-node probe: aggregates node health and revives a
        # node marked dead that answers again (e.g. restarted by an
        # operator) so it rejoins the HRW ring.
        node_health: Dict[str, object] = {}
        for entry in self.registry.snapshot():
            client = self._client_factory(str(entry["url"]))
            try:
                health = client.healthz()
            except Exception as exc:
                node_health[str(entry["id"])] = {"ok": False, "error": str(exc)}
                continue
            node_health[str(entry["id"])] = {
                "ok": bool(health.get("ok")),
                "scheduler": health.get("scheduler"),
                "peer_cache": health.get("peer_cache"),
            }
            if not entry["alive"]:
                self.registry.mark_alive(str(entry["id"]))
        payload["node_health"] = node_health
        payload["alive_nodes"] = self.registry.alive_ids()
        return payload

    def start(self) -> None:
        self.scheduler.start()

    def shutdown(self, drain: bool = True, timeout: float = 60.0) -> None:
        self.scheduler.shutdown(drain=drain, timeout=timeout)

    # ------------------------------------------------------------------
    # Routing and failover (runs on scheduler worker threads)
    # ------------------------------------------------------------------
    def _execute(self, job: VerifyJob) -> Dict[str, object]:
        try:
            return self._route(job)
        finally:
            self._release(job.tenant)

    def _route(self, job: VerifyJob) -> Dict[str, object]:
        key = routing_fingerprint(job)
        tried: List[str] = []
        for attempt in range(1, self.max_attempts + 1):
            node = self.registry.owner(key, exclude=tried)
            if node is None:
                raise RuntimeError(
                    "no live node to run job (tried: %s)"
                    % (", ".join(tried) or "none")
                )
            self.registry.record_routed(node.id)
            try:
                result = self._run_on_node(node.id, node.url, job)
            except _JobLost as lost:
                tried.append(node.id)
                self.registry.record_lost(node.id)
                if lost.node_dead:
                    self.registry.mark_dead(node.id)
                with self._admission_lock:
                    self._requeues += 1
                continue
            self.registry.record_completed(node.id)
            result = dict(result)
            result.setdefault("node", node.id)
            result["routed_node"] = node.id
            result["routing_key"] = key
            result["attempts"] = attempt
            return result
        raise RuntimeError(
            "job lost %d times (nodes: %s); giving up"
            % (self.max_attempts, ", ".join(tried))
        )

    def _run_on_node(
        self, node_id: str, url: str, job: VerifyJob
    ) -> Dict[str, object]:
        """Submit to one node and poll to completion.

        Raises :class:`_JobLost` when the node dies (consecutive
        unreachability) or forgets the job (a node restart answers 404 for
        an id that only ever lived in its predecessor's memory); raises
        ``RuntimeError`` for a *deterministic* node-side failure, which
        must not be retried elsewhere.
        """
        client = self._client_factory(url)
        try:
            submitted = client.submit(job.to_dict())
        except ServiceUnavailable as exc:
            raise _JobLost(node_id, str(exc), node_dead=True) from None
        node_job = str(submitted["id"])
        deadline = time.monotonic() + self.poll_timeout
        delay = 0.02
        strikes = 0
        while True:
            try:
                record = client.status(node_job)
                strikes = 0
            except ServiceUnavailable as exc:
                strikes += 1
                if strikes >= self.death_strikes:
                    raise _JobLost(node_id, str(exc), node_dead=True) from None
                record = None
            except RuntimeError as exc:
                if "404" in str(exc):
                    # The node restarted: queued/running records are not
                    # persisted, so the job id is gone with the old process.
                    raise _JobLost(
                        node_id, "node forgot job: %s" % exc, node_dead=False
                    ) from None
                raise
            if record is not None:
                state = record.get("state")
                if state == "done":
                    result = dict(record.get("result") or {})
                    result["node_job"] = node_job
                    return result
                if state == "failed":
                    raise RuntimeError(
                        "node %s failed job: %s"
                        % (node_id, record.get("error"))
                    )
            if time.monotonic() > deadline:
                raise RuntimeError(
                    "node %s still running job %s after %.0fs"
                    % (node_id, node_job, self.poll_timeout)
                )
            time.sleep(delay)
            delay = min(delay * 1.5, 0.5)


class _CoordinatorHandler(_Handler):
    """The node wire protocol plus coordinator-only endpoints.

    Adds ``GET /nodes`` (the registry table) and turns
    :class:`AdmissionError` on ``POST /submit`` into a ``429`` with a
    ``Retry-After`` header — the backpressure contract of the cluster.
    """

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        from urllib.parse import urlparse

        if urlparse(self.path).path == "/nodes":
            self._reply(200, {"nodes": self.service.registry.snapshot()})
        else:
            super().do_GET()

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        from urllib.parse import urlparse

        if urlparse(self.path).path == "/submit":
            try:
                payload = self._read_json()
                self._reply(200, self.service.submit(payload))
            except AdmissionError as exc:
                self._reply(
                    429,
                    {"error": str(exc), "retry_after": exc.retry_after},
                    headers={"Retry-After": "%g" % exc.retry_after},
                )
            except (ValueError, TypeError) as exc:
                self._reply(400, {"error": str(exc)})
        else:
            super().do_POST()


class CoordinatorServer(ServiceServer):
    """One bound HTTP server fronting a :class:`Coordinator`."""

    def __init__(
        self,
        coordinator: Coordinator,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ) -> None:
        super().__init__(
            coordinator, host=host, port=port,
            handler_cls=_CoordinatorHandler,
        )


def serve_coordinator(
    nodes: List[Tuple[str, str]],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache_dir: Optional[str] = None,
    workers: int = 8,
    **kwargs,
) -> CoordinatorServer:
    """A bound (not yet running) coordinator over ``[(node_id, url), ...]``."""
    coordinator = Coordinator(
        NodeRegistry(nodes), cache_dir=cache_dir, workers=workers, **kwargs
    )
    return CoordinatorServer(coordinator, host=host, port=port)
