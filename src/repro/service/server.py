"""Stdlib JSON-over-HTTP front end: ``python -m repro serve``.

The wire protocol is deliberately tiny (no dependencies, curl-friendly):

==============================  ==============================================
endpoint                        meaning
==============================  ==============================================
``POST /submit``                body = :class:`~repro.service.VerifyJob`
                                fields as JSON; returns ``{"id", "state"}``
``GET /status?id=<job id>``     one job record (state, timings, result)
``GET /status``                 compact listing of all known jobs
``GET /result?id=<job id>``     the finished record only (404 until done)
``GET /healthz``                liveness + scheduler/pool statistics
``GET /cache?stage=&digest=``   checksummed content-addressed cache entry
                                (the cache peer protocol; 404 when absent)
``POST /peers``                 install the cluster peer table on a node
``POST /shutdown``              drain and stop (used by tests and --smoke)
==============================  ==============================================

:class:`VerificationService` owns the scheduler, the result store and the
cache directory; :class:`ServiceClient` is the matching
:mod:`urllib`-based client used by ``python -m repro submit`` / ``status``.
:func:`run_smoke` is the CI round-trip: a real server on an ephemeral port,
two concurrent HTTP clients, and a byte-identity check of every served
verdict against a direct in-process :func:`~repro.verify.verify_design`
run of the same submission.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib import request as urllib_request
from urllib.error import HTTPError, URLError
from urllib.parse import parse_qs, urlparse

from ..pipeline.artifacts import (
    DiskCache,
    register_peer_fetcher,
    unregister_peer_fetcher,
)
from .jobs import VerifyJob, execute_verify_job
from .scheduler import Scheduler
from .store import ResultStore

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8155

#: Static cluster peer table for a standalone node, as
#: ``node-0=http://host:port,node-1=http://host:port`` — the launcher-less
#: way to join nodes on real machines (the local launcher POSTs ``/peers``
#: instead).  Must list every node including this one, identically on all.
PEERS_ENV = "REPRO_PEERS"


def _peers_from_env(value: str) -> List[tuple]:
    """Parse ``PEERS_ENV``: comma-separated ``node_id=url`` entries."""
    peers = []
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        node_id, sep, url = entry.partition("=")
        if not sep or not node_id.strip() or not url.strip():
            raise ValueError(
                "%s entries must be 'node_id=url', got %r"
                % (PEERS_ENV, entry)
            )
        peers.append((node_id.strip(), url.strip()))
    return peers


class ServiceUnavailable(RuntimeError):
    """The service could not be reached (after any configured retries)."""


class ServiceBusy(RuntimeError):
    """The service refused the request with 429-style backpressure."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class VerificationService:
    """Scheduler + store + cache wiring behind the HTTP handler."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        workers: int = 2,
        prune_max_mb: Optional[float] = None,
        prune_every: int = 50,
        node_id: Optional[str] = None,
    ) -> None:
        self.cache_dir = cache_dir
        self.node_id = node_id or os.environ.get("REPRO_NODE_ID") or None
        self.peer_client = None  # set by set_peers (cluster mode)
        disk = DiskCache(cache_dir) if cache_dir else None
        self.disk = disk
        self.store = ResultStore(disk)
        self.scheduler = Scheduler(
            self._execute, workers=workers, store=self.store
        )
        self.started_at = time.time()
        self._prune_max_bytes = (
            int(prune_max_mb * 1024 * 1024) if prune_max_mb else None
        )
        self._prune_every = max(1, prune_every)
        self._executed = 0
        self._prune_lock = threading.Lock()
        self._maybe_prune()

    def _execute(self, job: VerifyJob) -> Dict[str, object]:
        record = execute_verify_job(job, cache_dir=self.cache_dir)
        if self.node_id:
            record["node"] = self.node_id
        self._maybe_prune(step=True)
        return record

    def _maybe_prune(self, step: bool = False) -> None:
        """Bound the cache: LRU-prune at startup and every N finished jobs."""
        if self._prune_max_bytes is None or self.store.disk is None:
            return
        with self._prune_lock:
            if step:
                self._executed += 1
                if self._executed % self._prune_every:
                    return
            try:
                self.store.disk.prune(self._prune_max_bytes)
            except Exception:
                pass  # pruning must never take a request down

    # ------------------------------------------------------------------
    def set_peers(self, peers, self_id: Optional[str] = None) -> None:
        """Join a cluster: install the peer table and hook the disk cache.

        ``peers`` is the full ``[(node_id, url), ...]`` table including this
        node.  After this call, local :class:`DiskCache` misses on peered
        stages ask the digest's HRW owner node before the pipeline
        recomputes (see :mod:`repro.service.peers`).
        """
        from .peers import PeerCacheClient

        if self_id is not None:
            self.node_id = self_id
        self.peer_client = PeerCacheClient(self.node_id or "", peers)
        if self.disk is not None:
            register_peer_fetcher(self.disk.root, self.peer_client.fetch)

    def cache_entry(self, stage: str, digest: str) -> Optional[str]:
        """A *local* cache payload for a peer's ``GET /cache`` request.

        Reads the file directly rather than ``disk.load`` so one node's
        miss never daisy-chains into a peer-of-peer fetch storm.
        """
        from .peers import PEERED_STAGES

        if self.disk is None or stage not in PEERED_STAGES:
            return None
        if not digest or not all(c in "0123456789abcdef" for c in digest):
            return None  # content digests are lowercase hex; no path tricks
        try:
            path = self.disk._path(stage, digest)
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        except OSError:
            return None

    def start(self) -> None:
        self.scheduler.start()

    def shutdown(self, drain: bool = True, timeout: float = 60.0) -> None:
        self.scheduler.shutdown(drain=drain, timeout=timeout)
        if self.peer_client is not None and self.disk is not None:
            unregister_peer_fetcher(self.disk.root)

    def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        job = VerifyJob.from_dict(payload)
        job_id = self.scheduler.submit(job)
        return {"id": job_id, "state": "queued"}

    def healthz(self) -> Dict[str, object]:
        from ..exec import advisor_stats, shared_pool_stats
        from ..exec.exchange import exchange_stats
        from ..telemetry import telemetry_store_for

        payload = {
            "ok": True,
            "node_id": self.node_id,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "scheduler": self.scheduler.stats(),
            "pools": shared_pool_stats(),
            "cache_dir": self.cache_dir,
            # Learned-portfolio counters: shortlist hit rate, escalations,
            # predicted-vs-actual winner (see repro.exec.advisor).
            "advisor": advisor_stats(),
            # Clause-exchange hubs and vault traffic (repro.exec.exchange).
            "clause_sharing": exchange_stats(),
        }
        if self.peer_client is not None:
            payload["peer_cache"] = self.peer_client.stats()
        store = telemetry_store_for(self.cache_dir)
        if store is not None:
            payload["telemetry"] = store.stats()
        return payload


class _Handler(BaseHTTPRequestHandler):
    """Routes the wire protocol onto the service object."""

    service: VerificationService  # set on the server class per instance
    server_version = "repro-serve/1"

    # ------------------------------------------------------------------
    def _reply(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging stays out of benchmark/CI output

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        query = parse_qs(url.query)
        job_id = (query.get("id") or [None])[0]
        if url.path == "/healthz":
            self._reply(200, self.service.healthz())
        elif url.path == "/status" and job_id:
            record = self.service.scheduler.status(job_id)
            if record is None:
                self._reply(404, {"error": "unknown job id %r" % job_id})
            else:
                self._reply(200, record)
        elif url.path == "/status":
            self._reply(
                200,
                {
                    "jobs": self.service.scheduler.jobs(),
                    "stats": self.service.scheduler.stats(),
                },
            )
        elif url.path == "/result" and job_id:
            record = self.service.scheduler.status(job_id)
            if record is None:
                self._reply(404, {"error": "unknown job id %r" % job_id})
            elif record["state"] not in ("done", "failed"):
                self._reply(
                    404, {"error": "job is %s" % record["state"], "id": job_id}
                )
            else:
                self._reply(200, record)
        elif url.path == "/cache":
            from .peers import payload_checksum

            stage = (query.get("stage") or [""])[0]
            digest = (query.get("digest") or [""])[0]
            payload = self.service.cache_entry(stage, digest)
            if payload is None:
                self._reply(
                    404,
                    {"error": "no cache entry %s/%s" % (stage, digest[:16])},
                )
            else:
                self._reply(
                    200,
                    {
                        "stage": stage,
                        "digest": digest,
                        "payload": payload,
                        "sha256": payload_checksum(payload),
                    },
                )
        else:
            self._reply(404, {"error": "unknown endpoint %r" % url.path})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        if url.path == "/submit":
            try:
                payload = self._read_json()
                self._reply(200, self.service.submit(payload))
            except (ValueError, TypeError) as exc:
                self._reply(400, {"error": str(exc)})
        elif url.path == "/peers":
            try:
                payload = self._read_json()
                peers = [
                    (str(p["id"]), str(p["url"]))
                    for p in payload.get("peers", [])
                ]
                self.service.set_peers(
                    peers, self_id=payload.get("self_id")
                )
                self._reply(200, {"ok": True, "peers": len(peers)})
            except (ValueError, TypeError, KeyError) as exc:
                self._reply(400, {"error": str(exc)})
        elif url.path == "/shutdown":
            self._reply(200, {"ok": True})
            threading.Thread(target=self.server.shutdown, daemon=True).start()
        else:
            self._reply(404, {"error": "unknown endpoint %r" % url.path})


class ServiceServer:
    """One bound HTTP server wrapping a :class:`VerificationService`."""

    def __init__(
        self,
        service: VerificationService,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        handler_cls: type = None,  # a _Handler subclass; default _Handler
    ) -> None:
        self.service = service
        base = handler_cls or _Handler
        handler = type("BoundHandler", (base,), {"service": service})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return "http://%s:%d" % (host, port)

    def start(self) -> None:
        """Serve in a background thread (tests, smoke)."""
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's blocking mode)."""
        self.service.start()
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self.stop()

    def stop(self, drain: bool = True) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.shutdown(drain=drain)
        if self._thread is not None:
            self._thread.join(5)


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache_dir: Optional[str] = None,
    workers: int = 2,
    prune_max_mb: Optional[float] = None,
    node_id: Optional[str] = None,
) -> ServiceServer:
    """Build a bound (not yet running) server; ``port=0`` picks a free port."""
    service = VerificationService(
        cache_dir=cache_dir,
        workers=workers,
        prune_max_mb=prune_max_mb,
        node_id=node_id,
    )
    peers_env = os.environ.get(PEERS_ENV)
    if peers_env:
        peers = _peers_from_env(peers_env)
        if peers:
            service.set_peers(peers)
    return ServiceServer(service, host=host, port=port)


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class ServiceClient:
    """Tiny urllib client of the wire protocol (used by the CLI).

    Transient connection failures (``URLError``: refused, reset, DNS blips,
    a coordinator mid-restart) are retried with capped exponential backoff
    plus jitter — up to ``retries`` extra attempts, sleeping
    ``min(backoff * 2**attempt, backoff_cap)`` scaled by a random factor in
    [0.5, 1.0] so a herd of clients does not reconnect in lockstep.  HTTP
    error *responses* are never retried here: the request reached a live
    server, and re-sending a ``/submit`` could double-enqueue.  A 429 from
    the coordinator's admission control raises :class:`ServiceBusy` with
    the server's suggested ``retry_after``; exhausted connection retries
    raise :class:`ServiceUnavailable`.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        retries: int = 4,
        backoff: float = 0.1,
        backoff_cap: float = 2.0,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_cap = backoff_cap

    def _request(
        self, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_reason: object = "unknown"
        for attempt in range(self.retries + 1):
            req = urllib_request.Request(
                self.url + path, data=data, headers=headers
            )
            try:
                with urllib_request.urlopen(
                    req, timeout=self.timeout
                ) as reply:
                    return json.loads(reply.read().decode("utf-8"))
            except HTTPError as exc:
                try:
                    detail = json.loads(exc.read().decode("utf-8"))
                except Exception:
                    detail = {"error": str(exc)}
                if exc.code == 429:
                    try:
                        retry_after = float(
                            exc.headers.get("Retry-After") or 1.0
                        )
                    except (TypeError, ValueError):
                        retry_after = 1.0
                    raise ServiceBusy(
                        "service replied 429: %s"
                        % detail.get("error", detail),
                        retry_after=retry_after,
                    ) from None
                raise RuntimeError(
                    "service replied %d: %s"
                    % (exc.code, detail.get("error", detail))
                ) from None
            except URLError as exc:
                last_reason = exc.reason
                if attempt < self.retries:
                    delay = min(
                        self.backoff * (2 ** attempt), self.backoff_cap
                    )
                    time.sleep(delay * (0.5 + 0.5 * random.random()))
        raise ServiceUnavailable(
            "cannot reach verification service at %s after %d attempts: %s"
            % (self.url, self.retries + 1, last_reason)
        ) from None

    def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        return self._request("/submit", payload)

    def status(self, job_id: Optional[str] = None) -> Dict[str, object]:
        return self._request("/status" + ("?id=%s" % job_id if job_id else ""))

    def healthz(self) -> Dict[str, object]:
        return self._request("/healthz")

    def set_peers(self, self_id: str, peers) -> Dict[str, object]:
        """Install the cluster peer table ``[(node_id, url), ...]``."""
        return self._request(
            "/peers",
            {
                "self_id": self_id,
                "peers": [
                    {"id": node_id, "url": url} for node_id, url in peers
                ],
            },
        )

    def shutdown(self) -> Dict[str, object]:
        return self._request("/shutdown", {})

    def wait(self, job_id: str, timeout: float = 600.0) -> Dict[str, object]:
        """Poll until the job reaches a final state; returns the record.

        Outlives a service restart: connection failures while polling keep
        waiting until the deadline (the restarted service answers from its
        :class:`~repro.service.ResultStore` for completed jobs).
        """
        deadline = time.monotonic() + timeout
        delay = 0.05
        while True:
            try:
                record = self.status(job_id)
            except ServiceUnavailable:
                if time.monotonic() > deadline:
                    raise
                record = {"state": "unreachable"}
            if record.get("state") in ("done", "failed"):
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    "job %s still %s after %.0fs"
                    % (job_id, record.get("state"), timeout)
                )
            time.sleep(delay)
            delay = min(delay * 1.5, 1.0)


# ----------------------------------------------------------------------
# CI smoke round-trip
# ----------------------------------------------------------------------
#: The smoke corpus: small, fast, and covering the buggy + correct + gen:
#: monolithic paths plus a decomposed (warm-pool) submission.
SMOKE_SUBMISSIONS: List[Dict[str, object]] = [
    {"design": "pipe3", "bugs": ["no-forwarding"], "time_limit": 120.0,
     "tenant": "smoke-a", "priority": 1},
    {"design": "gen:depth=3,width=1", "time_limit": 120.0,
     "tenant": "smoke-b"},
    {"design": "pipe3", "bugs": ["no-forwarding"], "decompose": 3,
     "time_limit": 120.0, "tenant": "smoke-b"},
]


def run_smoke(cache_dir: Optional[str] = None, verbose: bool = True) -> int:
    """Serve on an ephemeral port, pump ≥2 concurrent clients, verify bytes.

    Each submission is sent over real HTTP from its own client thread; the
    served ``verdict_json`` must be **byte-identical** to a direct
    in-process run of the same submission (fresh pipeline, separate cache),
    which pins the service layer to the library's semantics.  Returns a
    process exit code.
    """
    import tempfile

    from .jobs import execute_verify_job as direct_execute

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as workdir:
        server = serve(
            port=0,
            cache_dir=cache_dir or ("%s/service-cache" % workdir),
            workers=2,
        )
        server.start()
        url = server.address
        records: List[Optional[Dict[str, object]]] = [None] * len(
            SMOKE_SUBMISSIONS
        )
        errors: List[str] = []

        def client(index: int, payload: Dict[str, object]) -> None:
            try:
                c = ServiceClient(url)
                submitted = c.submit(payload)
                records[index] = c.wait(submitted["id"], timeout=600.0)
            except Exception as exc:
                errors.append("client %d: %s" % (index, exc))

        threads = [
            threading.Thread(target=client, args=(i, dict(p)), daemon=True)
            for i, p in enumerate(SMOKE_SUBMISSIONS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(600.0)
        wall = time.perf_counter() - started
        health = ServiceClient(url).healthz()
        server.stop()

        if errors:
            for line in errors:
                print("smoke FAIL: %s" % line)
            return 1
        failures = 0
        for index, payload in enumerate(SMOKE_SUBMISSIONS):
            record = records[index]
            if record is None or record.get("state") != "done":
                print("smoke FAIL: job %d did not finish: %r" % (index, record))
                failures += 1
                continue
            served = record["result"]["verdict_json"]
            direct = direct_execute(
                VerifyJob.from_dict(dict(payload)),
                cache_dir="%s/direct-cache-%d" % (workdir, index),
            )["verdict_json"]
            identical = served == direct
            if verbose:
                print(
                    "smoke %-28s verdict=%-8s served==direct: %s"
                    % (
                        payload["design"],
                        record["result"]["verdict"],
                        identical,
                    )
                )
            if not identical:
                print("  served: %s" % served[:200])
                print("  direct: %s" % direct[:200])
                failures += 1
        if verbose:
            print(
                "smoke: %d submissions over %d concurrent clients in %.1fs "
                "(scheduler %s)"
                % (
                    len(SMOKE_SUBMISSIONS),
                    len(SMOKE_SUBMISSIONS),
                    wall,
                    health["scheduler"]["states"],
                )
            )
        return 1 if failures else 0
