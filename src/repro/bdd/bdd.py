"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

The paper uses BDDs (via CUDD with the sifting dynamic-reordering heuristic)
as the main decision-diagram SAT procedure; they were the previous state of
the art for verifying *correct* processors.  This module implements a classic
ROBDD manager:

* nodes are interned per-variable in unique tables, so structural equality is
  object identity and the diagram is canonical for the current variable
  order;
* the variable order is a permutation between variable indices (fixed at
  declaration time) and levels (mutable); :meth:`BDDManager.swap_adjacent`
  exchanges two adjacent levels in place using Rudell's swap, the primitive
  on which sifting (:mod:`repro.bdd.sifting`) is built;
* :meth:`BDDManager.ite` is the universal operator with a computed-table
  cache; and/or/not/xor/implies/iff are defined in terms of it;
* satisfying assignments can be extracted (:meth:`BDDManager.any_sat`) and
  counted (:meth:`BDDManager.count_sat`).

Terminal nodes are the Python booleans ``False`` / ``True``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class BDDNode:
    """Internal (non-terminal) BDD node testing the variable ``var``."""

    __slots__ = ("var", "low", "high", "uid")

    def __init__(self, var: int, low: "BDDRef", high: "BDDRef", uid: int):
        self.var = var
        self.low = low
        self.high = high
        self.uid = uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BDDNode(var=%d, uid=%d)" % (self.var, self.uid)


#: A BDD reference is either a terminal (bool) or a BDDNode.
BDDRef = object


class BDDNodeLimitExceeded(MemoryError):
    """Raised when the configured node limit is exceeded during construction."""


class BDDManager:
    """Unique-table + computed-table ROBDD manager with reorderable levels."""

    def __init__(self, max_nodes: Optional[int] = None):
        self.ZERO = False
        self.ONE = True
        # var index -> {(low_id, high_id) -> node}
        self._unique: List[Dict[Tuple[int, int], BDDNode]] = []
        self._ite_cache: Dict[Tuple[int, int, int], BDDRef] = {}
        self._var_names: List[str] = []
        self._name_to_var: Dict[str, int] = {}
        # permutation between levels (position in the order) and var indices
        self._level_of_var: List[int] = []
        self._var_at_level: List[int] = []
        self._uid_counter = 2  # 0/1 reserved for terminals
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _ref_id(self, ref: BDDRef) -> int:
        if ref is True:
            return 1
        if ref is False:
            return 0
        return ref.uid

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    @property
    def num_nodes(self) -> int:
        """Total number of live internal nodes across all variables."""
        return sum(len(table) for table in self._unique)

    def var_order(self) -> List[str]:
        """Current variable order, top (tested first) to bottom."""
        return [self._var_names[v] for v in self._var_at_level]

    def level_of(self, name: str) -> int:
        """Current level of the named variable (0 is the top)."""
        return self._level_of_var[self._name_to_var[name]]

    def clear_caches(self) -> None:
        """Drop the computed table (required after reordering)."""
        self._ite_cache.clear()

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def add_variable(self, name: str) -> BDDRef:
        """Declare a variable (appended at the bottom of the order)."""
        if name in self._name_to_var:
            return self.var(name)
        var = len(self._var_names)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._level_of_var.append(len(self._var_at_level))
        self._var_at_level.append(var)
        self._unique.append({})
        return self.var(name)

    def var(self, name: str) -> BDDRef:
        """BDD of a single declared variable."""
        var = self._name_to_var[name]
        return self._make_node(var, self.ZERO, self.ONE)

    def _make_node(self, var: int, low: BDDRef, high: BDDRef) -> BDDRef:
        if low is high:
            return low
        key = (self._ref_id(low), self._ref_id(high))
        table = self._unique[var]
        node = table.get(key)
        if node is None:
            if self.max_nodes is not None and self.num_nodes >= self.max_nodes:
                raise BDDNodeLimitExceeded(
                    "BDD node limit exceeded (%d nodes)" % self.max_nodes
                )
            node = BDDNode(var, low, high, self._uid_counter)
            self._uid_counter += 1
            table[key] = node
        return node

    def _level(self, ref: BDDRef) -> int:
        if isinstance(ref, BDDNode):
            return self._level_of_var[ref.var]
        return len(self._var_names)

    def _cofactors(self, ref: BDDRef, level: int) -> Tuple[BDDRef, BDDRef]:
        if isinstance(ref, BDDNode) and self._level_of_var[ref.var] == level:
            return ref.low, ref.high
        return ref, ref

    # ------------------------------------------------------------------
    # Core operators
    # ------------------------------------------------------------------
    def ite(self, f: BDDRef, g: BDDRef, h: BDDRef) -> BDDRef:
        """If-then-else ``f ? g : h`` — the universal BDD operator."""
        if f is True:
            return g
        if f is False:
            return h
        if g is h:
            return g
        if g is True and h is False:
            return f
        key = (self._ref_id(f), self._ref_id(g), self._ref_id(h))
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        # Iterative two-phase evaluation (explicit stack) so deep diagrams do
        # not overflow Python's recursion limit.
        result = self._ite_iterative(f, g, h)
        self._ite_cache[key] = result
        return result

    def _ite_iterative(self, f0: BDDRef, g0: BDDRef, h0: BDDRef) -> BDDRef:
        pending: List[Tuple] = [("call", f0, g0, h0)]
        results: List[BDDRef] = []
        while pending:
            frame = pending.pop()
            if frame[0] == "call":
                _, f, g, h = frame
                if f is True:
                    results.append(g)
                    continue
                if f is False:
                    results.append(h)
                    continue
                if g is h:
                    results.append(g)
                    continue
                if g is True and h is False:
                    results.append(f)
                    continue
                key = (self._ref_id(f), self._ref_id(g), self._ref_id(h))
                cached = self._ite_cache.get(key)
                if cached is not None:
                    results.append(cached)
                    continue
                level = min(self._level(f), self._level(g), self._level(h))
                var = self._var_at_level[level]
                f_low, f_high = self._cofactors(f, level)
                g_low, g_high = self._cofactors(g, level)
                h_low, h_high = self._cofactors(h, level)
                pending.append(("combine", var, key))
                pending.append(("call", f_high, g_high, h_high))
                pending.append(("call", f_low, g_low, h_low))
            else:
                _, var, key = frame
                high = results.pop()
                low = results.pop()
                node = self._make_node(var, low, high)
                self._ite_cache[key] = node
                results.append(node)
        return results[-1]

    def not_(self, f: BDDRef) -> BDDRef:
        return self.ite(f, self.ZERO, self.ONE)

    def and_(self, f: BDDRef, g: BDDRef) -> BDDRef:
        return self.ite(f, g, self.ZERO)

    def or_(self, f: BDDRef, g: BDDRef) -> BDDRef:
        return self.ite(f, self.ONE, g)

    def xor(self, f: BDDRef, g: BDDRef) -> BDDRef:
        return self.ite(f, self.not_(g), g)

    def implies(self, f: BDDRef, g: BDDRef) -> BDDRef:
        return self.ite(f, g, self.ONE)

    def iff(self, f: BDDRef, g: BDDRef) -> BDDRef:
        return self.ite(f, g, self.not_(g))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_true(self, f: BDDRef) -> bool:
        return f is True

    def is_false(self, f: BDDRef) -> bool:
        return f is False

    def evaluate(self, f: BDDRef, assignment: Dict[str, bool]) -> bool:
        """Evaluate the function under an assignment of variable names."""
        node = f
        while isinstance(node, BDDNode):
            name = self._var_names[node.var]
            node = node.high if assignment.get(name, False) else node.low
        return bool(node)

    def any_sat(self, f: BDDRef) -> Optional[Dict[str, bool]]:
        """One satisfying assignment (unmentioned variables may take any value)."""
        if f is False:
            return None
        assignment: Dict[str, bool] = {}
        node = f
        while isinstance(node, BDDNode):
            name = self._var_names[node.var]
            if node.high is not False:
                assignment[name] = True
                node = node.high
            else:
                assignment[name] = False
                node = node.low
        return assignment

    def count_sat(self, f: BDDRef, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        if num_vars is None:
            num_vars = self.num_vars
        cache: Dict[int, int] = {}

        def count(ref: BDDRef, level: int) -> int:
            if ref is False:
                return 0
            if ref is True:
                return 1 << (num_vars - level)
            node_level = self._level_of_var[ref.var]
            cached = cache.get(ref.uid)
            if cached is None:
                cached = count(ref.low, node_level + 1) + count(
                    ref.high, node_level + 1
                )
                cache[ref.uid] = cached
            return cached << (node_level - level)

        return count(f, 0)

    def size(self, f: BDDRef) -> int:
        """Number of internal nodes reachable from ``f``."""
        return sum(1 for _ in self.iter_nodes(f))

    def iter_nodes(self, f: BDDRef) -> Iterator[BDDNode]:
        """Iterate the internal nodes reachable from ``f``."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if not isinstance(node, BDDNode) or node.uid in seen:
                continue
            seen.add(node.uid)
            yield node
            stack.append(node.low)
            stack.append(node.high)

    # ------------------------------------------------------------------
    # Garbage collection and reordering support
    # ------------------------------------------------------------------
    def collect_garbage(self, roots: List[BDDRef]) -> int:
        """Drop nodes not reachable from ``roots``; returns nodes removed."""
        live = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if not isinstance(node, BDDNode) or node.uid in live:
                continue
            live.add(node.uid)
            stack.append(node.low)
            stack.append(node.high)
        removed = 0
        for table in self._unique:
            dead = [key for key, node in table.items() if node.uid not in live]
            for key in dead:
                del table[key]
                removed += 1
        if removed:
            self.clear_caches()
        return removed

    def swap_adjacent(self, level: int) -> None:
        """Swap the variables at ``level`` and ``level + 1`` (Rudell's swap).

        Nodes are mutated in place, so every externally held reference remains
        valid and continues to denote the same Boolean function under the new
        order.
        """
        if level < 0 or level + 1 >= self.num_vars:
            raise IndexError("no adjacent level to swap with")
        upper_var = self._var_at_level[level]
        lower_var = self._var_at_level[level + 1]
        upper_table = self._unique[upper_var]
        lower_table = self._unique[lower_var]

        # Nodes of the upper variable that depend on the lower variable must
        # be restructured; the others are untouched (their variable simply
        # ends up one level lower, which needs no structural change).
        dependent: List[Tuple[Tuple[int, int], BDDNode]] = []
        for key, node in upper_table.items():
            low, high = node.low, node.high
            if (isinstance(low, BDDNode) and low.var == lower_var) or (
                isinstance(high, BDDNode) and high.var == lower_var
            ):
                dependent.append((key, node))
        for key, _node in dependent:
            del upper_table[key]

        for _key, node in dependent:
            low, high = node.low, node.high
            if isinstance(low, BDDNode) and low.var == lower_var:
                f00, f01 = low.low, low.high
            else:
                f00 = f01 = low
            if isinstance(high, BDDNode) and high.var == lower_var:
                f10, f11 = high.low, high.high
            else:
                f10 = f11 = high
            new_low = self._make_node(upper_var, f00, f10)
            new_high = self._make_node(upper_var, f01, f11)
            # The node now tests the (previously) lower variable on top.
            node.var = lower_var
            node.low = new_low
            node.high = new_high
            lower_table[(self._ref_id(new_low), self._ref_id(new_high))] = node

        # Exchange the level <-> variable mapping.
        self._var_at_level[level], self._var_at_level[level + 1] = lower_var, upper_var
        self._level_of_var[upper_var] = level + 1
        self._level_of_var[lower_var] = level
        self.clear_caches()
