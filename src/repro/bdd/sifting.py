"""Sifting dynamic variable reordering (Rudell, ICCAD 1993).

Each variable in turn is moved through every position in the order via
adjacent swaps, and left at the position where the total number of live nodes
was smallest.  Variables are processed from the one owning the most nodes to
the one owning the fewest, which is the classic schedule.  A growth factor
aborts a single variable's sift early if the diagram balloons.

The manager's :meth:`~repro.bdd.bdd.BDDManager.swap_adjacent` mutates nodes in
place, so the ``roots`` passed by the caller remain valid BDD references
throughout.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .bdd import BDDManager, BDDRef


def _nodes_per_level(manager: BDDManager) -> List[int]:
    return [len(manager._unique[var]) for var in manager._var_at_level]


def sift_variable(
    manager: BDDManager, level: int, max_growth: float = 1.2
) -> int:
    """Sift the variable currently at ``level`` to its locally best position.

    Returns the level at which the variable finally settles.
    """
    num_vars = manager.num_vars
    best_size = manager.num_nodes
    size_limit = int(best_size * max_growth) + 2
    best_level = level
    current = level

    # Move down to the bottom first, remembering the best position seen.
    while current + 1 < num_vars:
        manager.swap_adjacent(current)
        current += 1
        size = manager.num_nodes
        if size < best_size:
            best_size = size
            best_level = current
        if size > size_limit:
            break
    # Then move up to the top.
    while current > 0:
        manager.swap_adjacent(current - 1)
        current -= 1
        size = manager.num_nodes
        if size < best_size:
            best_size = size
            best_level = current
        if size > size_limit and current > best_level:
            # keep moving toward best_level; the loop naturally continues
            pass
    # Finally move back down to the best position found.
    while current < best_level:
        manager.swap_adjacent(current)
        current += 1
    return current


def sift(
    manager: BDDManager,
    roots: Optional[Sequence[BDDRef]] = None,
    max_growth: float = 1.2,
    max_passes: int = 1,
) -> int:
    """Run sifting over all variables; returns the final node count.

    ``roots`` (if given) is used to garbage-collect dead nodes before and
    after reordering so the size measurements reflect live nodes only.
    """
    if manager.num_vars < 2:
        return manager.num_nodes
    if roots is not None:
        manager.collect_garbage(list(roots))

    for _ in range(max_passes):
        before = manager.num_nodes
        # Process variables from the most populated unique table downwards.
        ranked_vars = sorted(
            range(manager.num_vars),
            key=lambda var: len(manager._unique[var]),
            reverse=True,
        )
        for var in ranked_vars:
            level = manager._level_of_var[var]
            sift_variable(manager, level, max_growth=max_growth)
        if roots is not None:
            manager.collect_garbage(list(roots))
        if manager.num_nodes >= before:
            break
    return manager.num_nodes
