"""Building BDDs from Boolean expressions and CNF formulae.

Two construction paths are provided, matching the paper's BDD experiments:

* :func:`build_from_expr` compiles a hash-consed Boolean expression DAG
  (the output of the EUFM translation) bottom-up into a BDD, optionally
  running sifting when the diagram grows past a threshold;
* :func:`build_from_cnf` conjoins clause BDDs, which is what a BDD-based
  evaluation of a CNF benchmark file does.

Variable orders matter enormously for these formulae (the paper reports up to
four orders of magnitude between BDDs and Chaff).  The default order is the
order of first occurrence (a depth-first / fanin-flavoured static order); the
``sift_threshold`` option enables dynamic reordering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..boolean.cnf import CNF
from ..boolean.expr import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolITE,
    BoolNot,
    BoolOr,
    BoolVar,
    iter_bool_subexpressions,
)
from .bdd import BDDManager, BDDRef
from .sifting import sift


def declare_variables(
    manager: BDDManager, names: Sequence[str], order: Optional[Sequence[str]] = None
) -> None:
    """Declare variables, honouring an explicit order when given."""
    if order is not None:
        ordered = [name for name in order if name in set(names)]
        remaining = [name for name in names if name not in set(ordered)]
        names = list(ordered) + remaining
    for name in names:
        manager.add_variable(name)


def build_from_expr(
    root: BoolExpr,
    manager: Optional[BDDManager] = None,
    variable_order: Optional[Sequence[str]] = None,
    sift_threshold: Optional[int] = None,
) -> BDDRef:
    """Compile a Boolean expression DAG into a BDD.

    ``sift_threshold`` (node count) triggers dynamic reordering whenever the
    manager grows past the threshold; the threshold is doubled after each
    reordering, mimicking CUDD's auto-reorder policy.
    """
    if manager is None:
        manager = BDDManager()
    # Declare variables in first-occurrence order (or the explicit order).
    occurrence_order: List[str] = []
    seen = set()
    for node in iter_bool_subexpressions(root):
        if isinstance(node, BoolVar) and node.name not in seen:
            seen.add(node.name)
            occurrence_order.append(node.name)
    declare_variables(manager, occurrence_order, variable_order)

    cache: Dict[int, BDDRef] = {}
    threshold = sift_threshold

    def maybe_sift(current_roots: List[BDDRef]) -> None:
        nonlocal threshold
        if threshold is not None and manager.num_nodes > threshold:
            manager.collect_garbage(current_roots)
            if manager.num_nodes > threshold:
                sift(manager, current_roots)
                threshold = max(threshold * 2, manager.num_nodes * 2)

    for node in iter_bool_subexpressions(root):
        if isinstance(node, BoolConst):
            cache[node.uid] = manager.ONE if node.value else manager.ZERO
        elif isinstance(node, BoolVar):
            cache[node.uid] = manager.var(node.name)
        elif isinstance(node, BoolNot):
            cache[node.uid] = manager.not_(cache[node.arg.uid])
        elif isinstance(node, BoolAnd):
            acc = manager.ONE
            for arg in node.args:
                acc = manager.and_(acc, cache[arg.uid])
                maybe_sift(list(cache.values()) + [acc])
            cache[node.uid] = acc
        elif isinstance(node, BoolOr):
            acc = manager.ZERO
            for arg in node.args:
                acc = manager.or_(acc, cache[arg.uid])
                maybe_sift(list(cache.values()) + [acc])
            cache[node.uid] = acc
        elif isinstance(node, BoolITE):
            cache[node.uid] = manager.ite(
                cache[node.cond.uid],
                cache[node.then_expr.uid],
                cache[node.else_expr.uid],
            )
        else:  # pragma: no cover - defensive
            raise TypeError("unknown Boolean node: %r" % (node,))
        maybe_sift(list(cache.values()))
    return cache[root.uid]


def build_from_cnf(
    cnf: CNF,
    manager: Optional[BDDManager] = None,
    variable_order: Optional[Sequence[int]] = None,
    sift_threshold: Optional[int] = None,
) -> BDDRef:
    """Conjoin the clause BDDs of a CNF formula."""
    if manager is None:
        manager = BDDManager()
    order = variable_order or list(range(1, cnf.num_vars + 1))
    for var in order:
        manager.add_variable("x%d" % var)

    threshold = sift_threshold
    acc = manager.ONE
    for clause in cnf.clauses:
        clause_bdd = manager.ZERO
        for lit in clause:
            var_bdd = manager.var("x%d" % abs(lit))
            literal_bdd = var_bdd if lit > 0 else manager.not_(var_bdd)
            clause_bdd = manager.or_(clause_bdd, literal_bdd)
        acc = manager.and_(acc, clause_bdd)
        if acc is manager.ZERO:
            return acc
        if threshold is not None and manager.num_nodes > threshold:
            manager.collect_garbage([acc])
            if manager.num_nodes > threshold:
                sift(manager, [acc])
                threshold = max(threshold * 2, manager.num_nodes * 2)
    return acc
