"""ROBDD package: manager, builders, sifting reordering, SAT/tautology checks."""

from .bdd import BDDManager, BDDNode, BDDNodeLimitExceeded
from .builder import build_from_cnf, build_from_expr, declare_variables
from .checker import check_tautology, solve_with_bdd
from .sifting import sift, sift_variable

__all__ = [
    "BDDManager",
    "BDDNode",
    "BDDNodeLimitExceeded",
    "build_from_cnf",
    "build_from_expr",
    "check_tautology",
    "declare_variables",
    "sift",
    "sift_variable",
    "solve_with_bdd",
]
