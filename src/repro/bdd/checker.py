"""Using BDDs as a SAT procedure.

Two entry points mirror how BDDs are used in the paper:

* :func:`solve_with_bdd` — evaluate a CNF benchmark with BDDs (build the
  conjunction of clause BDDs; the formula is satisfiable iff the result is
  not the ZERO terminal).  This is the "BDDs" row of Table 1.
* :func:`check_tautology` — build the BDD of a Boolean correctness formula
  directly (no CNF detour) and report whether it is the ONE terminal; the
  counterexample, if any, is extracted from the diagram.  This is how the
  BDD-based EVC evaluation of the correctness criteria works (Fig. 7).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from ..boolean.cnf import CNF
from ..boolean.expr import BoolExpr
from .bdd import BDDManager, BDDNodeLimitExceeded
from ..sat.types import SAT, UNKNOWN, UNSAT, SolverResult, SolverStats
from .builder import build_from_cnf, build_from_expr


def solve_with_bdd(
    cnf: CNF,
    time_limit: Optional[float] = None,
    max_nodes: int = 2_000_000,
    sift_threshold: Optional[int] = 50_000,
) -> SolverResult:
    """Decide a CNF formula by building the BDD of its clause conjunction."""
    stats = SolverStats()
    start = time.perf_counter()
    manager = BDDManager(max_nodes=max_nodes)
    try:
        root = build_from_cnf(cnf, manager=manager, sift_threshold=sift_threshold)
    except (BDDNodeLimitExceeded, MemoryError):
        stats.time_seconds = time.perf_counter() - start
        return SolverResult(UNKNOWN, stats=stats, solver_name="bdd")
    stats.time_seconds = time.perf_counter() - start
    if time_limit is not None and stats.time_seconds > time_limit:
        # The diagram was built, but over budget: report unknown to keep the
        # time-limited comparisons honest.
        return SolverResult(UNKNOWN, stats=stats, solver_name="bdd")
    if manager.is_false(root):
        return SolverResult(UNSAT, stats=stats, solver_name="bdd")
    named = manager.any_sat(root) or {}
    assignment: Dict[int, bool] = {}
    for var in range(1, cnf.num_vars + 1):
        assignment[var] = named.get("x%d" % var, False)
    return SolverResult(SAT, assignment=assignment, stats=stats, solver_name="bdd")


def check_tautology(
    formula: BoolExpr,
    max_nodes: int = 2_000_000,
    sift_threshold: Optional[int] = 50_000,
    variable_order=None,
) -> Tuple[Optional[bool], Optional[Dict[str, bool]], float]:
    """Check whether a Boolean formula is a tautology using BDDs.

    Returns ``(is_tautology, counterexample, seconds)``; ``is_tautology`` is
    ``None`` when the node limit was exceeded.  The counterexample maps
    primary-variable names to Boolean values and falsifies the formula.
    """
    start = time.perf_counter()
    manager = BDDManager(max_nodes=max_nodes)
    try:
        root = build_from_expr(
            formula,
            manager=manager,
            variable_order=variable_order,
            sift_threshold=sift_threshold,
        )
    except (BDDNodeLimitExceeded, MemoryError):
        return None, None, time.perf_counter() - start
    elapsed = time.perf_counter() - start
    if manager.is_true(root):
        return True, None, elapsed
    counterexample = manager.any_sat(manager.not_(root))
    return False, counterexample, elapsed
