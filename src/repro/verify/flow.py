"""End-to-end verification flow: design -> EUFM -> Boolean -> CNF -> SAT/BDD.

This is the reproduction of the paper's tool flow (TLSim + EVC + SAT
checker).  The central entry point is :func:`verify_design`; it builds the
Burch–Dill correctness formula for a processor model, translates it with the
requested :class:`~repro.encoding.TranslationOptions`, converts it to CNF and
hands its complement to a SAT procedure:

* an **unsat** answer means the correctness formula is a tautology — the
  design is verified correct;
* a **sat** answer is a counterexample — the design has a bug (for the
  injected-bug suites this is the expected outcome);
* **unknown** means the solver hit its budget.

Since the staged-pipeline refactor the functions here are thin wrappers over
:class:`repro.pipeline.VerificationPipeline`, which memoises every
intermediate artifact (formula, UF elimination, encoding, CNF) so sweeps and
repeated runs rebuild only what changed; construct a pipeline directly to
share those artifacts across calls.  The ``bdd`` solver decides the encoded
Boolean formula directly (the paper's Fig. 7 evaluation) instead of taking
the Tseitin detour.

:func:`verify_design_decomposed` evaluates the decomposed criterion instead,
racing the weak criteria the way the paper's parallel runs do — by default
on one warm incremental solver over a shared selector-guarded CNF (CDCL
backends), falling back to a multiprocess fan-out of per-window CNFs — and
:func:`formula_statistics` exposes the CNF/primary-variable counts the
paper's tables report.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..boolean.tseitin import to_cnf
from ..encoding.translator import TranslationOptions, translate
from ..eufm.terms import Formula
from ..hdl.machine import ProcessorModel
from ..pipeline.pipeline import VerificationPipeline
from ..pipeline.result import BUGGY, INCONCLUSIVE, VERIFIED, VerificationResult
from ..sat.registry import get_backend
from .burch_dill import build_components, correctness_formula
from .decomposition import decompose, group_criteria

__all__ = [
    "BUGGY",
    "INCONCLUSIVE",
    "VERIFIED",
    "VerificationResult",
    "formula_statistics",
    "generate_correctness_cnf",
    "score_parallel_runs",
    "verify_design",
    "verify_design_decomposed",
]


def generate_correctness_cnf(
    model: ProcessorModel,
    options: Optional[TranslationOptions] = None,
    formula: Optional[Formula] = None,
) -> tuple:
    """Translate a design's correctness formula and convert it to CNF.

    Returns ``(cnf, translation_result, seconds)``.  The CNF asserts the
    *complement* of the correctness formula, so it is satisfiable exactly when
    the design has a bug.  A pre-built ``formula`` (e.g. a weak criterion) can
    be supplied to skip the monolithic construction.
    """
    started = time.perf_counter()
    if formula is None:
        formula = correctness_formula(model)
    translation = translate(model.manager, formula, options)
    cnf = to_cnf(translation.bool_formula, assert_value=False)
    elapsed = time.perf_counter() - started
    return cnf, translation, elapsed


def verify_design(
    model: ProcessorModel,
    options: Optional[TranslationOptions] = None,
    solver: str = "chaff",
    time_limit: Optional[float] = None,
    seed: int = 0,
    formula: Optional[Formula] = None,
    label: str = "",
    **solver_options,
) -> VerificationResult:
    """Verify one design with one translation configuration and one solver.

    Thin wrapper over :class:`~repro.pipeline.VerificationPipeline` with a
    fresh artifact store; build a pipeline yourself to reuse artifacts across
    several calls (solver sweeps, variations).
    """
    pipeline = VerificationPipeline(model)
    criterion = None if formula is None else (label, formula)
    return pipeline.run(
        solver=solver,
        options=options,
        criterion=criterion,
        time_limit=time_limit,
        seed=seed,
        label=label,
        **solver_options,
    )


def verify_design_decomposed(
    model: ProcessorModel,
    parallel_runs: int,
    options: Optional[TranslationOptions] = None,
    solver: str = "chaff",
    time_limit: Optional[float] = None,
    window_element: Optional[str] = None,
    seed: int = 0,
    max_workers: Optional[int] = None,
    incremental: Optional[bool] = None,
    **solver_options,
) -> List[VerificationResult]:
    """Verify a design through the decomposed criterion.

    Returns one :class:`VerificationResult` per weak-criterion group, in
    group order.  With an incremental, assumption-capable backend (the CDCL
    family — the default ``chaff`` qualifies) the groups are translated into
    **one** shared selector-guarded CNF and discharged sequentially by a
    single warm solver that keeps learned clauses between windows
    (:meth:`~repro.pipeline.VerificationPipeline.run_incremental`); each
    verified result then also names the criteria of its assumption core.
    Other backends fan the per-window CNF solves out over worker processes
    (``max_workers``, defaulting to the CPU count — see
    :func:`repro.sat.solve_batch`).  Pass ``incremental=False`` to force the
    cold multiprocess path, ``incremental=True`` to require the warm path
    (raising for incapable backends).

    The caller scores the results with parallel-run semantics: minimum time
    to a ``sat`` answer when hunting bugs, maximum time over all groups when
    proving correctness (see :func:`score_parallel_runs`).
    """
    components = build_components(model)
    criteria = decompose(components, window_element=window_element)
    grouped = group_criteria(criteria, parallel_runs, model.manager)
    pipeline = VerificationPipeline(model)
    if incremental is None:
        backend = get_backend(solver)
        incremental = backend.incremental and backend.assumptions
    if incremental:
        return pipeline.run_incremental(
            grouped,
            solver=solver,
            options=options,
            time_limit=time_limit,
            seed=seed,
            **solver_options,
        )
    return pipeline.run_batch(
        grouped,
        solver=solver,
        options=options,
        time_limit=time_limit,
        seed=seed,
        max_workers=max_workers,
        **solver_options,
    )


def score_parallel_runs(
    results: Sequence[VerificationResult], hunting_bugs: bool
) -> VerificationResult:
    """Pick the representative result under parallel-run semantics.

    When hunting bugs the runs race: the first (fastest) counterexample wins.
    When proving correctness every run must finish, so the slowest run
    determines the verification time; if any run finds a counterexample the
    design is buggy.
    """
    if not results:
        raise ValueError("no results to score")
    buggy = [r for r in results if r.is_buggy]
    if hunting_bugs:
        if buggy:
            return min(buggy, key=lambda r: r.total_seconds)
        return max(results, key=lambda r: r.total_seconds)
    if buggy:
        return min(buggy, key=lambda r: r.total_seconds)
    return max(results, key=lambda r: r.total_seconds)


def formula_statistics(
    model: ProcessorModel, options: Optional[TranslationOptions] = None
) -> Dict[str, int]:
    """CNF and primary-variable statistics of a design's correctness formula."""
    cnf, translation, _seconds = generate_correctness_cnf(model, options)
    stats = {
        "cnf_vars": cnf.num_vars,
        "cnf_clauses": cnf.num_clauses,
        "cnf_literals": cnf.literal_count(),
    }
    stats.update(translation.summary())
    return stats
