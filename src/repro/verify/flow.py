"""End-to-end verification flow: design -> EUFM -> Boolean -> CNF -> SAT/BDD.

This is the reproduction of the paper's tool flow (TLSim + EVC + SAT
checker).  The central entry point is :func:`verify_design`; it builds the
Burch–Dill correctness formula for a processor model, translates it with the
requested :class:`~repro.encoding.TranslationOptions`, converts it to CNF and
hands its complement to a SAT procedure:

* an **unsat** answer means the correctness formula is a tautology — the
  design is verified correct;
* a **sat** answer is a counterexample — the design has a bug (for the
  injected-bug suites this is the expected outcome);
* **unknown** means the solver hit its budget.

:func:`verify_design_decomposed` evaluates the decomposed criterion instead,
racing the weak criteria the way the paper's parallel runs do, and
:func:`formula_statistics` exposes the CNF/primary-variable counts the
paper's tables report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..boolean.cnf import CNF
from ..boolean.tseitin import to_cnf
from ..encoding.translator import TranslationOptions, TranslationResult, translate
from ..eufm.terms import Formula
from ..hdl.machine import ProcessorModel
from ..sat.api import is_complete, solve
from ..sat.types import SAT, UNKNOWN, UNSAT, SolverResult
from .burch_dill import CorrectnessComponents, build_components, correctness_formula
from .decomposition import WeakCriterion, decompose, group_criteria

#: Verification verdicts.
VERIFIED = "verified"
BUGGY = "buggy"
INCONCLUSIVE = "inconclusive"


@dataclass
class VerificationResult:
    """Outcome of verifying one design with one configuration."""

    design: str
    verdict: str
    solver_result: SolverResult
    translation: Optional[TranslationResult]
    cnf_vars: int = 0
    cnf_clauses: int = 0
    translate_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    counterexample: Optional[Dict[str, bool]] = None
    label: str = ""

    @property
    def is_verified(self) -> bool:
        return self.verdict == VERIFIED

    @property
    def is_buggy(self) -> bool:
        return self.verdict == BUGGY

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by the benchmark harness."""
        return {
            "design": self.design,
            "verdict": self.verdict,
            "solver": self.solver_result.solver_name,
            "cnf_vars": self.cnf_vars,
            "cnf_clauses": self.cnf_clauses,
            "primary_vars": self.translation.primary_vars if self.translation else 0,
            "translate_seconds": round(self.translate_seconds, 4),
            "solve_seconds": round(self.solve_seconds, 4),
            "total_seconds": round(self.total_seconds, 4),
        }


def generate_correctness_cnf(
    model: ProcessorModel,
    options: Optional[TranslationOptions] = None,
    formula: Optional[Formula] = None,
) -> tuple:
    """Translate a design's correctness formula and convert it to CNF.

    Returns ``(cnf, translation_result, seconds)``.  The CNF asserts the
    *complement* of the correctness formula, so it is satisfiable exactly when
    the design has a bug.  A pre-built ``formula`` (e.g. a weak criterion) can
    be supplied to skip the monolithic construction.
    """
    started = time.perf_counter()
    if formula is None:
        formula = correctness_formula(model)
    translation = translate(model.manager, formula, options)
    cnf = to_cnf(translation.bool_formula, assert_value=False)
    elapsed = time.perf_counter() - started
    return cnf, translation, elapsed


def _verdict_from_solver(result: SolverResult, solver: str) -> str:
    if result.is_unsat:
        return VERIFIED
    if result.is_sat:
        return BUGGY
    return INCONCLUSIVE


def verify_design(
    model: ProcessorModel,
    options: Optional[TranslationOptions] = None,
    solver: str = "chaff",
    time_limit: Optional[float] = None,
    seed: int = 0,
    formula: Optional[Formula] = None,
    label: str = "",
    **solver_options,
) -> VerificationResult:
    """Verify one design with one translation configuration and one solver."""
    cnf, translation, translate_seconds = generate_correctness_cnf(
        model, options, formula=formula
    )
    solve_started = time.perf_counter()
    result = solve(
        cnf, solver=solver, time_limit=time_limit, seed=seed, **solver_options
    )
    solve_seconds = time.perf_counter() - solve_started
    counterexample = None
    if result.is_sat and result.assignment:
        counterexample = {
            name: value
            for name, value in cnf.assignment_by_name(result.assignment).items()
            if not name.startswith("_")
        }
    return VerificationResult(
        design=model.name,
        verdict=_verdict_from_solver(result, solver),
        solver_result=result,
        translation=translation,
        cnf_vars=cnf.num_vars,
        cnf_clauses=cnf.num_clauses,
        translate_seconds=translate_seconds,
        solve_seconds=solve_seconds,
        total_seconds=translate_seconds + solve_seconds,
        counterexample=counterexample,
        label=label or (options.label() if options else "base"),
    )


def verify_design_decomposed(
    model: ProcessorModel,
    parallel_runs: int,
    options: Optional[TranslationOptions] = None,
    solver: str = "chaff",
    time_limit: Optional[float] = None,
    window_element: Optional[str] = None,
    seed: int = 0,
    **solver_options,
) -> List[VerificationResult]:
    """Verify a design through the decomposed criterion.

    Returns one :class:`VerificationResult` per weak-criterion group.  The
    caller scores them with parallel-run semantics: minimum time to a ``sat``
    answer when hunting bugs, maximum time over all groups when proving
    correctness (see :func:`score_parallel_runs`).
    """
    components = build_components(model)
    criteria = decompose(components, window_element=window_element)
    grouped = group_criteria(criteria, parallel_runs, model.manager)
    results: List[VerificationResult] = []
    for criterion in grouped:
        results.append(
            verify_design(
                model,
                options=options,
                solver=solver,
                time_limit=time_limit,
                seed=seed,
                formula=criterion.formula,
                label=criterion.label,
                **solver_options,
            )
        )
    return results


def score_parallel_runs(
    results: Sequence[VerificationResult], hunting_bugs: bool
) -> VerificationResult:
    """Pick the representative result under parallel-run semantics.

    When hunting bugs the runs race: the first (fastest) counterexample wins.
    When proving correctness every run must finish, so the slowest run
    determines the verification time; if any run finds a counterexample the
    design is buggy.
    """
    if not results:
        raise ValueError("no results to score")
    buggy = [r for r in results if r.is_buggy]
    if hunting_bugs:
        if buggy:
            return min(buggy, key=lambda r: r.total_seconds)
        return max(results, key=lambda r: r.total_seconds)
    if buggy:
        return min(buggy, key=lambda r: r.total_seconds)
    return max(results, key=lambda r: r.total_seconds)


def formula_statistics(
    model: ProcessorModel, options: Optional[TranslationOptions] = None
) -> Dict[str, int]:
    """CNF and primary-variable statistics of a design's correctness formula."""
    cnf, translation, _seconds = generate_correctness_cnf(model, options)
    stats = {
        "cnf_vars": cnf.num_vars,
        "cnf_clauses": cnf.num_clauses,
        "cnf_literals": cnf.literal_count(),
    }
    stats.update(translation.summary())
    return stats
