"""End-to-end verification flow: design -> EUFM -> Boolean -> CNF -> SAT/BDD.

This is the reproduction of the paper's tool flow (TLSim + EVC + SAT
checker).  The central entry point is :func:`verify_design`; it builds the
Burch–Dill correctness formula for a processor model, translates it with the
requested :class:`~repro.encoding.TranslationOptions`, converts it to CNF and
hands its complement to a SAT procedure:

* an **unsat** answer means the correctness formula is a tautology — the
  design is verified correct;
* a **sat** answer is a counterexample — the design has a bug (for the
  injected-bug suites this is the expected outcome);
* **unknown** means the solver hit its budget.

Since the staged-pipeline refactor the functions here are thin wrappers over
:class:`repro.pipeline.VerificationPipeline`, which memoises every
intermediate artifact (formula, UF elimination, encoding, CNF) so sweeps and
repeated runs rebuild only what changed; construct a pipeline directly to
share those artifacts across calls.  The ``bdd`` solver decides the encoded
Boolean formula directly (the paper's Fig. 7 evaluation) instead of taking
the Tseitin detour.

:func:`verify_design_decomposed` evaluates the decomposed criterion instead,
racing the weak criteria the way the paper's parallel runs do — by default
on one warm incremental solver over a shared selector-guarded CNF (CDCL
backends), falling back to a multiprocess fan-out of per-window CNFs — and
:func:`formula_statistics` exposes the CNF/primary-variable counts the
paper's tables report.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..boolean.tseitin import to_cnf
from ..encoding.translator import TranslationOptions, translate
from ..eufm.terms import Formula
from ..exec.executor import PortfolioExecutor
from ..exec.strategy import normalize_portfolio
from ..hdl.machine import ProcessorModel
from ..pipeline.pipeline import VerificationPipeline
from ..pipeline.result import BUGGY, INCONCLUSIVE, VERIFIED, VerificationResult
from ..sat.registry import get_backend
from ..sat.types import UNKNOWN, SolverResult
from .burch_dill import build_components, correctness_formula
from .decomposition import decompose, group_criteria
from .options import VerifyOptions

__all__ = [
    "BUGGY",
    "INCONCLUSIVE",
    "VERIFIED",
    "VerificationResult",
    "VerifyOptions",
    "formula_statistics",
    "generate_correctness_cnf",
    "score_parallel_runs",
    "verify_design",
    "verify_design_decomposed",
]


def _resolve_options(entry_point: str, options, legacy) -> VerifyOptions:
    """Normalise an entry point's ``options`` argument to a VerifyOptions.

    Accepts the new :class:`VerifyOptions`, the legacy positional
    :class:`TranslationOptions` (folded into ``VerifyOptions.translation``)
    and the legacy keyword sprawl (mapped through
    :meth:`VerifyOptions.from_legacy_kwargs`, which warns once).  Mixing a
    VerifyOptions with legacy keywords is ambiguous and raises.
    """
    translation = None
    if isinstance(options, TranslationOptions):
        translation = options
        options = None
    if legacy or translation is not None:
        if options is not None:
            raise TypeError(
                "%s() takes either a VerifyOptions or legacy keyword "
                "arguments, not both" % entry_point
            )
        return VerifyOptions.from_legacy_kwargs(
            entry_point, translation=translation, **legacy
        )
    return options if options is not None else VerifyOptions()


def generate_correctness_cnf(
    model: ProcessorModel,
    options: Optional[TranslationOptions] = None,
    formula: Optional[Formula] = None,
) -> tuple:
    """Translate a design's correctness formula and convert it to CNF.

    Returns ``(cnf, translation_result, seconds)``.  The CNF asserts the
    *complement* of the correctness formula, so it is satisfiable exactly when
    the design has a bug.  A pre-built ``formula`` (e.g. a weak criterion) can
    be supplied to skip the monolithic construction.
    """
    started = time.perf_counter()
    if formula is None:
        formula = correctness_formula(model)
    translation = translate(model.manager, formula, options)
    cnf = to_cnf(translation.bool_formula, assert_value=False)
    elapsed = time.perf_counter() - started
    return cnf, translation, elapsed


def _resolve_model(model) -> ProcessorModel:
    """Accept a model instance or a ``gen:...`` generated-design spec.

    Every verification entry point takes either an instantiated
    :class:`~repro.hdl.machine.ProcessorModel` or a generator spec string
    (``gen:depth=5,width=2,...`` — see :mod:`repro.gen`), which is built
    fresh with its own expression manager.  Mutated generated designs are
    built explicitly through :class:`repro.gen.PipelineGenerator`.
    """
    if isinstance(model, str):
        from ..gen import SPEC_PREFIX, build_design

        if not model.startswith(SPEC_PREFIX):
            raise ValueError(
                "design strings must be generator specs starting with %r, "
                "got %r (instantiate catalogue designs explicitly or use "
                "the CLI)" % (SPEC_PREFIX, model)
            )
        return build_design(model)
    return model


def verify_design(
    model: ProcessorModel,
    options: Optional[VerifyOptions] = None,
    *,
    formula: Optional[Formula] = None,
    label: str = "",
    advisor=None,
    telemetry=None,
    **legacy,
) -> VerificationResult:
    """Verify one design under one :class:`VerifyOptions` configuration.

    Thin wrapper over :class:`~repro.pipeline.VerificationPipeline` with a
    fresh artifact store; build a pipeline yourself to reuse artifacts across
    several calls (solver sweeps, variations).

    ``options`` is a :class:`VerifyOptions` (solver, portfolio, budget,
    seed, encoding, cache directory, backend-specific solver options — see
    :mod:`repro.verify.options`).  The pre-``VerifyOptions`` spellings —
    a :class:`~repro.encoding.TranslationOptions` in the ``options``
    position and/or ``solver=`` / ``time_limit=`` / ``portfolio=`` /
    ``cache_dir=`` / solver-option keywords — continue to work through a
    mapping shim that emits one :class:`DeprecationWarning` per process.

    ``VerifyOptions.portfolio`` switches to first-winner racing: it accepts
    a sequence of :class:`~repro.exec.Strategy`, a sequence of backend
    names, or an integer N (the first N entries of
    :func:`~repro.exec.default_portfolio`).  The strategies race on the
    :class:`~repro.exec.PortfolioExecutor` and the returned result is the
    **winner** — the first definitive SAT/UNSAT answer — with the race
    metadata under ``result.race``; the losers are cancelled cooperatively.
    Portfolio races run through the learned advisor
    (:meth:`~repro.pipeline.VerificationPipeline.run_advised`): with a
    trained telemetry store next to the cache, only the advisor's top-k
    shortlist races first, escalating to the full set when the shortlist
    cannot decide — same verdicts, fewer worker-seconds.  ``advisor`` /
    ``telemetry`` override the store-derived defaults; ``REPRO_ADVISOR=off``
    disables shortlisting.
    ``VerifyOptions.cache_dir`` attaches the persistent content-addressed
    artifact cache (also enabled globally by the ``REPRO_CACHE_DIR``
    environment variable), so a repeat verification of an unchanged design
    replays the translation — and any definitive verdict — from disk.

    ``model`` may also be a ``gen:...`` spec string, which builds the
    corresponding correct generated pipeline (see :mod:`repro.gen`).
    ``formula`` / ``label`` / ``advisor`` / ``telemetry`` stay keyword
    arguments: they carry live objects, not serialisable configuration.
    """
    opts = _resolve_options("verify_design", options, legacy)
    model = _resolve_model(model)
    pipeline = VerificationPipeline(model, cache_dir=opts.cache_dir)
    criterion = None if formula is None else (label, formula)
    translation = opts.translation_options()
    if opts.portfolio is not None:
        strategies = normalize_portfolio(
            opts.portfolio, seed=opts.seed, solver_options=opts.solver_options
        )
        if not strategies:
            raise ValueError("portfolio must name at least one strategy")
        results = pipeline.run_advised(
            strategies,
            criterion=criterion,
            time_limit=opts.time_limit,
            max_workers=opts.max_workers,
            default_options=translation,
            advisor=advisor,
            telemetry=telemetry,
        )
        winner = next((r for r in results if r.race and r.race["is_winner"]), None)
        if winner is not None:
            return winner
        # No definitive answer: report the longest-running strategy
        # (parallel-run semantics — every run exhausted its budget).
        return max(results, key=lambda r: r.total_seconds)
    return pipeline.run(
        solver=opts.solver,
        options=translation,
        criterion=criterion,
        time_limit=opts.time_limit,
        seed=opts.seed,
        label=label,
        **opts.solver_options,
    )


def verify_design_decomposed(
    model: ProcessorModel,
    parallel_runs: Optional[int] = None,
    options: Optional[VerifyOptions] = None,
    **legacy,
) -> List[VerificationResult]:
    """Verify a design through the decomposed criterion.

    Returns one :class:`VerificationResult` per weak-criterion group, in
    group order.  ``parallel_runs`` (the number of groups) may also come
    from ``VerifyOptions.decompose``; the explicit argument wins.  With an
    incremental, assumption-capable backend (the CDCL family — the default
    ``chaff`` qualifies, as does the lazy ``euf-lazy`` DPLL(T) backend)
    the groups are translated into **one** shared selector-guarded CNF and
    discharged sequentially by a single warm solver that keeps learned
    clauses between windows
    (:meth:`~repro.pipeline.VerificationPipeline.run_incremental`); each
    verified result then also names the criteria of its assumption core.
    Other backends fan the per-window CNF solves out over worker processes
    (``VerifyOptions.max_workers``, defaulting to the CPU count — see
    :func:`repro.sat.solve_batch`).  ``VerifyOptions.incremental=False``
    forces the cold multiprocess path, ``True`` requires the warm path
    (raising for incapable backends).

    ``VerifyOptions.mode`` selects the execution shape explicitly:

    * ``"incremental"`` / ``"batch"`` — the two paths above;
    * ``"race"`` — every (window group × backend) pair becomes a strategy
      on the :class:`~repro.exec.PortfolioExecutor` and a buggy design
      returns **as soon as any window of any backend finds a
      counterexample** (``sat`` is definitive; a single window's ``unsat``
      only retires that window, so a correct design still checks every
      group).  ``VerifyOptions.portfolio`` (legacy keyword ``solvers``)
      widens the race across several backends; groups undecided when the
      race ends come back ``inconclusive`` with the race metadata under
      ``result.race``.

    Legacy keywords (``solver=`` / ``mode=`` / ``incremental=`` / ...)
    keep working through the :class:`VerifyOptions` mapping shim, which
    warns once per process.

    The caller scores the results with parallel-run semantics: minimum time
    to a ``sat`` answer when hunting bugs, maximum time over all groups when
    proving correctness (see :func:`score_parallel_runs`).
    """
    opts = _resolve_options("verify_design_decomposed", options, legacy)
    mode = opts.mode
    if mode not in (None, "incremental", "batch", "race"):
        raise ValueError(
            "unknown decomposition mode %r; expected 'incremental', 'batch' "
            "or 'race'" % (mode,)
        )
    if parallel_runs is None:
        parallel_runs = opts.decompose
    if not parallel_runs:
        raise ValueError(
            "parallel_runs must be positive (pass it explicitly or set "
            "VerifyOptions.decompose)"
        )
    model = _resolve_model(model)
    components = build_components(model)
    criteria = decompose(components, window_element=opts.window_element)
    grouped = group_criteria(criteria, parallel_runs, model.manager)
    pipeline = VerificationPipeline(model, cache_dir=opts.cache_dir)
    translation = opts.translation_options()
    if mode == "race":
        return _race_decomposed(
            pipeline,
            grouped,
            solvers=list(opts.portfolio) if opts.portfolio else [opts.solver],
            options=translation,
            time_limit=opts.time_limit,
            seed=opts.seed,
            max_workers=opts.max_workers,
            **opts.solver_options,
        )
    incremental = opts.incremental
    if mode is not None:
        incremental = mode == "incremental"
    if incremental is None:
        backend = get_backend(opts.solver)
        incremental = backend.incremental and backend.assumptions
    if incremental:
        return pipeline.run_incremental(
            grouped,
            solver=opts.solver,
            options=translation,
            time_limit=opts.time_limit,
            seed=opts.seed,
            **opts.solver_options,
        )
    return pipeline.run_batch(
        grouped,
        solver=opts.solver,
        options=translation,
        time_limit=opts.time_limit,
        seed=opts.seed,
        max_workers=opts.max_workers,
        **opts.solver_options,
    )


def _race_decomposed(
    pipeline: VerificationPipeline,
    grouped: Sequence,
    solvers: Sequence[str],
    options: Optional[TranslationOptions],
    time_limit: Optional[float],
    seed: int,
    max_workers: Optional[int],
    **solver_options,
) -> List[VerificationResult]:
    """Race (window group × backend) jobs; the first counterexample wins.

    Two cancellation scopes ride on the executor's streaming interface:

    * a race-wide token — set by the first ``sat`` answer (a counterexample
      to any window refutes the whole design), stopping everything;
    * one token per window group — set when any backend proves the window
      ``unsat``, retiring the window's remaining backends so a correct
      design costs one proof per window, not one per (window × backend).
    """
    from ..exec.cancellation import shared_token
    from ..sat.batch import SolveJob

    options = options or TranslationOptions()
    for name in solvers:
        get_backend(name).validate_options(solver_options)

    window_tokens = [shared_token() for _ in grouped]
    prepared = []  # (group_index, solver, cnf, translation, tsec, label)
    jobs = []
    for group_index, criterion in enumerate(grouped):
        label = criterion.label
        for name in solvers:
            # Per-backend translation flavour: theory-aware backends race
            # on the Boolean skeleton, plain backends on the eager
            # encoding (a plain solver's "sat" on the skeleton would be a
            # propositional over-approximation, not a counterexample).
            # Both flavours are memoised, so mixed races translate each
            # flavour once per group, not once per job.
            cnf, translation, translate_seconds = pipeline._cnf_for_backend(
                get_backend(name), options, criterion
            )
            prepared.append(
                (group_index, name, cnf, translation, translate_seconds, label)
            )
            jobs.append(
                SolveJob(
                    cnf=cnf,
                    solver=name,
                    seed=seed,
                    time_limit=time_limit,
                    options=dict(solver_options),
                    tag="%s@%s" % (label, name),
                    cancel=window_tokens[group_index],
                )
            )

    executor = PortfolioExecutor(max_workers=max_workers)
    mode, workers = executor._plan(jobs)
    race_token = shared_token()
    started = time.perf_counter()
    winner_index: Optional[int] = None
    records: List[Optional[SolverResult]] = [None] * len(jobs)
    errors: Dict[int, str] = {}
    arrival: List[int] = []
    for completion in executor.stream(jobs, cancel=race_token):
        arrival.append(completion.index)
        if completion.error is not None:
            errors[completion.index] = completion.error
            continue
        record = completion.result
        records[completion.index] = record
        if record is None:
            continue
        group_index = prepared[completion.index][0]
        if record.is_sat and winner_index is None:
            winner_index = completion.index
            race_token.cancel()
        elif record.is_unsat:
            window_tokens[group_index].cancel()
    wall_seconds = time.perf_counter() - started

    def was_cancelled(index: int) -> bool:
        record = records[index]
        if record is None or not record.is_unknown:
            return False
        return race_token.cancelled() or window_tokens[
            prepared[index][0]
        ].cancelled()

    race_info = {
        "mode": mode,
        "workers": workers,
        "strategies": len(jobs),
        "winner_index": winner_index,
        "winner": jobs[winner_index].tag if winner_index is not None else None,
        "cancelled": sum(1 for index in range(len(jobs)) if was_cancelled(index)),
        "wall_seconds": round(wall_seconds, 6),
        "arrival_order": arrival,
    }

    # Collapse the (group × solver) records back to one result per group:
    # a sat answer wins, then unsat, then unknown/cancelled.
    rank = {"sat": 0, "unsat": 1, "unknown": 2}
    best: Dict[int, Tuple[int, int]] = {}  # group -> (rank, job index)
    for index, (group_index, _name, _cnf, _tr, _tsec, _label) in enumerate(
        prepared
    ):
        record = records[index]
        status = record.status if record is not None else UNKNOWN
        candidate = (rank.get(status, 2), index)
        if group_index not in best or candidate < best[group_index]:
            best[group_index] = candidate
    results = []
    for group_index in range(len(grouped)):
        _rank, index = best[group_index]
        _g, name, cnf, translation, translate_seconds, label = prepared[index]
        record = records[index]
        if record is None:
            record = SolverResult(UNKNOWN, solver_name=name)
        packaged = pipeline._package(
            record,
            translation,
            cnf,
            translate_seconds,
            record.stats.time_seconds,
            label,
        )
        packaged.race = dict(race_info)
        packaged.race["label"] = jobs[index].tag
        packaged.race["is_winner"] = index == winner_index
        packaged.race["was_cancelled"] = was_cancelled(index)
        if index in errors:
            packaged.race["error"] = errors[index]
        results.append(packaged)
    return results


def score_parallel_runs(
    results: Sequence[VerificationResult], hunting_bugs: bool
) -> VerificationResult:
    """Pick the representative result under parallel-run semantics.

    When hunting bugs the runs race: the first (fastest) counterexample wins.
    When proving correctness every run must finish, so the slowest run
    determines the verification time; if any run finds a counterexample the
    design is buggy.
    """
    if not results:
        raise ValueError("no results to score")
    buggy = [r for r in results if r.is_buggy]
    if hunting_bugs:
        if buggy:
            return min(buggy, key=lambda r: r.total_seconds)
        return max(results, key=lambda r: r.total_seconds)
    if buggy:
        return min(buggy, key=lambda r: r.total_seconds)
    return max(results, key=lambda r: r.total_seconds)


def formula_statistics(
    model: ProcessorModel, options: Optional[TranslationOptions] = None
) -> Dict[str, int]:
    """CNF and primary-variable statistics of a design's correctness formula.

    The CNF counts come from the shared feature extractor
    (:func:`repro.sat.features.cnf_features`) — the same single
    implementation the learned advisor and the telemetry store use.
    """
    from ..sat.features import cnf_features

    cnf, translation, _seconds = generate_correctness_cnf(model, options)
    features = cnf_features(cnf)
    stats = {
        "cnf_vars": int(features["cnf_vars"]),
        "cnf_clauses": int(features["cnf_clauses"]),
        "cnf_literals": int(features["cnf_literals"]),
    }
    stats.update(translation.summary())
    return stats
