"""Decomposition of the correctness criterion into weak criteria (Section 7).

Instead of one monolithic evaluation of::

    (f_{0,1} & ... & f_{0,N}) | ... | (f_{k,1} & ... & f_{k,N})  =  true

the criterion can be decomposed (Velev, CAV 2000) by choosing disjoint
*window functions* ``w_l`` — here the consistency formula of one designated
architectural element (the PC by default) for each completion count ``l`` —
and proving the set of *weak correctness criteria*:

* ``w_0 | w_1 | ... | w_k``  (the windows cover all cases), and
* ``w_l -> f_{l,i}`` for every ``l`` and every element ``i`` not used in
  forming ``w_l``.

Each weak criterion depends on only a subset of the ``f_{l,m}`` and is much
cheaper to evaluate; proving all of them implies the monolithic criterion.
When hunting bugs, the runs are raced and the first counterexample wins; when
proving correctness, all runs must finish and the maximum time is the
verification time.  The helper :func:`group_criteria` merges the weak
criteria into a requested number of parallel runs, which is how the paper's
8/16 and 11/22-run configurations are produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..eufm.terms import Formula
from .burch_dill import CorrectnessComponents


@dataclass
class WeakCriterion:
    """One member of the decomposed correctness criterion."""

    label: str
    formula: Formula


def decompose(
    components: CorrectnessComponents, window_element: Optional[str] = None
) -> List[WeakCriterion]:
    """Split the criterion into weak criteria around a window element.

    ``window_element`` defaults to ``"pc"`` when the design has a PC, or to
    the first architectural element otherwise.
    """
    manager = components.model.manager
    names = components.element_names
    if window_element is None:
        window_element = "pc" if "pc" in names else names[0]
    if window_element not in names:
        raise ValueError(
            "window element %r is not architectural (have: %s)"
            % (window_element, ", ".join(names))
        )

    windows = [row[window_element] for row in components.equalities]
    criteria: List[WeakCriterion] = [
        WeakCriterion("window-coverage", manager.or_(*windows))
    ]
    for completed, row in enumerate(components.equalities):
        for name in names:
            if name == window_element:
                continue
            criteria.append(
                WeakCriterion(
                    "w%d->%s" % (completed, name),
                    manager.implies(windows[completed], row[name]),
                )
            )
    return criteria


def group_criteria(
    criteria: Sequence[WeakCriterion], parallel_runs: int, manager
) -> List[WeakCriterion]:
    """Merge weak criteria into at most ``parallel_runs`` conjunctions.

    The paper evaluates 8, 16, 11 or 22 parallel runs depending on the design;
    this helper distributes the weak criteria round-robin and conjoins each
    bucket, preserving the property that proving every group proves the
    monolithic criterion.
    """
    if parallel_runs <= 0:
        raise ValueError("parallel_runs must be positive")
    if parallel_runs >= len(criteria):
        return list(criteria)
    buckets: List[List[WeakCriterion]] = [[] for _ in range(parallel_runs)]
    for index, criterion in enumerate(criteria):
        buckets[index % parallel_runs].append(criterion)
    grouped: List[WeakCriterion] = []
    for index, bucket in enumerate(buckets):
        if not bucket:
            continue
        grouped.append(
            WeakCriterion(
                "group%d[%s]" % (index, ",".join(c.label for c in bucket)),
                manager.and_(*[c.formula for c in bucket]),
            )
        )
    return grouped
