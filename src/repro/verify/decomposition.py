"""Decomposition of the correctness criterion into weak criteria (Section 7).

Instead of one monolithic evaluation of::

    F  =  (f_{0,1} & ... & f_{0,N}) | ... | (f_{k,1} & ... & f_{k,N})  =  true

the criterion can be decomposed (Velev, CAV 2000) for evaluation in parallel
runs by case-splitting on *window functions* derived from one designated
architectural element (the PC by default): ``w_l`` is the consistency formula
``f_{l,pc}`` of that element for completion count ``l``, and the prioritised
windows ``W_l = w_l & ~w_0 & ... & ~w_{l-1}`` partition the search space by
the smallest completion count the PC is consistent with.  The weak criteria
are:

* ``w_0 | w_1 | ... | w_k`` (the windows cover all cases), and
* ``(W_l & ~f_{l,i}) -> F`` for every ``l`` and every element ``i`` not used
  in forming ``W_l``.

Proving all of them proves the monolithic criterion: any interpretation
falls into the prioritised window ``W_l`` of its smallest PC-consistent
count ``l`` (by coverage); either every element is consistent with ``l``
completions — which is a disjunct of ``F`` — or some element ``i`` is not,
and the corresponding weak criterion supplies ``F`` directly.  Conversely,
each weak criterion is *valid whenever ``F`` is valid*, so a correct design
proves every run.

.. note::
   The windows must constrain, not replace, the consequent.  The earlier
   form ``w_l -> f_{l,i}`` is **not** valid in EUFM even for correct
   designs: with an uninterpreted next-PC function the PC may repeat
   (``pc = PCPlus4(pc)``), so the PC can be consistent with ``l``
   completions while the machine actually completed ``j != l``
   instructions — the register file then matches ``j``, falsifying
   ``w_l -> f_{l,regfile}``.  In the monolithic criterion those coincidence
   interpretations are covered by the ``j`` disjunct; the weak criteria must
   therefore keep the full disjunction as consequent and use the windows
   purely to split the SAT search space, which is how the paper's parallel
   runs evaluate them.

Each run's SAT instance is the monolithic instance constrained by its window
(and by the inconsistency of one element), so it is much cheaper to refute;
when hunting bugs the runs are raced and the first counterexample wins; when
proving correctness all runs must finish and the maximum time is the
verification time.  The helper :func:`group_criteria` merges the weak
criteria into a requested number of parallel runs, which is how the paper's
8/16 and 11/22-run configurations are produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..eufm.terms import Formula
from .burch_dill import CorrectnessComponents


@dataclass
class WeakCriterion:
    """One member of the decomposed correctness criterion."""

    label: str
    formula: Formula


def decompose(
    components: CorrectnessComponents, window_element: Optional[str] = None
) -> List[WeakCriterion]:
    """Split the criterion into weak criteria around a window element.

    ``window_element`` defaults to ``"pc"`` when the design has a PC, or to
    the first architectural element otherwise.
    """
    manager = components.model.manager
    names = components.element_names
    if window_element is None:
        window_element = "pc" if "pc" in names else names[0]
    if window_element not in names:
        raise ValueError(
            "window element %r is not architectural (have: %s)"
            % (window_element, ", ".join(names))
        )

    windows = [row[window_element] for row in components.equalities]
    monolithic = components.monolithic()
    criteria: List[WeakCriterion] = [
        WeakCriterion("window-coverage", manager.or_(*windows))
    ]
    other_names = [name for name in names if name != window_element]
    for completed, row in enumerate(components.equalities):
        # Prioritised window: the PC is consistent with `completed`
        # completions and with no smaller count.
        disjoint_window = manager.and_(
            windows[completed],
            *[manager.not_(windows[earlier]) for earlier in range(completed)]
        )
        if not other_names:
            criteria.append(
                WeakCriterion(
                    "w%d" % completed,
                    manager.implies(disjoint_window, monolithic),
                )
            )
            continue
        for name in other_names:
            criteria.append(
                WeakCriterion(
                    "w%d->%s" % (completed, name),
                    manager.implies(
                        manager.and_(disjoint_window, manager.not_(row[name])),
                        monolithic,
                    ),
                )
            )
    return criteria


def group_criteria(
    criteria: Sequence[WeakCriterion], parallel_runs: int, manager
) -> List[WeakCriterion]:
    """Merge weak criteria into at most ``parallel_runs`` conjunctions.

    The paper evaluates 8, 16, 11 or 22 parallel runs depending on the design;
    this helper distributes the weak criteria round-robin and conjoins each
    bucket, preserving the property that proving every group proves the
    monolithic criterion.
    """
    if parallel_runs <= 0:
        raise ValueError("parallel_runs must be positive")
    if parallel_runs >= len(criteria):
        return list(criteria)
    buckets: List[List[WeakCriterion]] = [[] for _ in range(parallel_runs)]
    for index, criterion in enumerate(criteria):
        buckets[index % parallel_runs].append(criterion)
    grouped: List[WeakCriterion] = []
    for index, bucket in enumerate(buckets):
        if not bucket:
            continue
        grouped.append(
            WeakCriterion(
                "group%d[%s]" % (index, ",".join(c.label for c in bucket)),
                manager.and_(*[c.formula for c in bucket]),
            )
        )
    return grouped
