"""Burch–Dill correspondence checking with flushing.

The correctness criterion (Burch & Dill, CAV 1994) compares the pipelined
implementation against the non-pipelined specification through the
commutative diagram::

        Q0 ----step (1 cycle)----> Q1
        |                          |
      flush                      flush
        |                          |
        v                          v
        A0 --spec (0..k steps)---> A1

Starting from an arbitrary symbolic implementation state ``Q0``, one
implementation cycle followed by flushing must yield the same architectural
state as flushing first and then running the specification for ``l``
instructions, for some ``l`` between 0 and the fetch width ``k``.  The
criterion is the disjunction over ``l`` of the conjunction over architectural
state elements ``m`` of the equality formulae ``f_{l,m}``.

Memory-typed elements (register files, data memory) are compared by reading
both final states at a fresh symbolic address, the standard EUFM reduction of
memory-state equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..eufm.terms import Expr, ExprManager, Formula
from ..hdl.machine import ProcessorModel
from ..hdl.state import BOOL, MEMORY, MachineState, StateElement


def element_equality(
    manager: ExprManager, element: StateElement, value_a: Expr, value_b: Expr
) -> Formula:
    """EUFM formula stating that one architectural element matches.

    Terms are compared with an equation, Booleans with an equivalence, and
    memories by comparing reads at a fresh symbolic address (if two memory
    states agree on an arbitrary address they agree everywhere that matters
    to the correctness criterion).
    """
    if element.kind == BOOL:
        return manager.iff(value_a, value_b)
    if element.kind == MEMORY:
        witness = manager.term_var(
            manager.fresh_name("addr!%s" % element.name), sort="addr"
        )
        return manager.eq(
            manager.read(value_a, witness), manager.read(value_b, witness)
        )
    return manager.eq(value_a, value_b)


@dataclass
class CorrectnessComponents:
    """The pieces of the Burch–Dill criterion for one design.

    ``equalities[l][name]`` is the formula ``f_{l,name}`` stating that
    architectural element ``name`` is consistent with the specification having
    executed ``l`` instructions.
    """

    model: ProcessorModel
    implementation_after: MachineState
    spec_states: List[MachineState]
    equalities: List[Dict[str, Formula]]

    @property
    def fetch_width(self) -> int:
        return len(self.equalities) - 1

    @property
    def element_names(self) -> List[str]:
        return [e.name for e in self.model.architectural_elements()]

    def case_formula(self, completed: int) -> Formula:
        """``AND_m f_{completed, m}`` — all elements consistent with l completions."""
        manager = self.model.manager
        return manager.and_(*self.equalities[completed].values())

    def monolithic(self) -> Formula:
        """The full criterion ``OR_l AND_m f_{l,m}``."""
        manager = self.model.manager
        return manager.or_(
            *[self.case_formula(l) for l in range(len(self.equalities))]
        )


def build_components(model: ProcessorModel) -> CorrectnessComponents:
    """Construct the Burch–Dill diagram and its per-element equality formulae."""
    manager = model.manager
    initial = model.initial_state()

    # Implementation side: one cycle of normal operation, then flush.
    stepped = model.step(initial, manager.true, flushing=False)
    implementation_after = model.flush(stepped)

    # Specification side: flush first, then 0..k specification steps.
    flushed = model.flush(initial)
    spec_states: List[MachineState] = [flushed]
    for _ in range(model.fetch_width):
        spec_states.append(model.spec_step(spec_states[-1]))

    elements = model.architectural_elements()
    equalities: List[Dict[str, Formula]] = []
    for spec_state in spec_states:
        row: Dict[str, Formula] = {}
        for element in elements:
            row[element.name] = element_equality(
                manager,
                element,
                implementation_after[element.name],
                spec_state[element.name],
            )
        equalities.append(row)
    return CorrectnessComponents(
        model=model,
        implementation_after=implementation_after,
        spec_states=spec_states,
        equalities=equalities,
    )


def correctness_formula(model: ProcessorModel) -> Formula:
    """The monolithic Burch–Dill correctness formula for a design.

    The formula must be valid (a tautology after translation to propositional
    logic) exactly when the pipelined implementation is correct with respect
    to its ISA specification.
    """
    return build_components(model).monolithic()
