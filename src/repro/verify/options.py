"""One options record for every verification entry point.

Before this module each entry point grew its own keyword sprawl:
``verify_design`` took ``solver`` / ``portfolio`` / ``time_limit`` /
``cache_dir`` / ``**solver_options``, ``verify_design_decomposed`` added
``mode`` / ``incremental`` / ``window_element`` / ``solvers``,
``run_parameter_variations`` had a third overlapping subset, and the
service's :class:`~repro.service.VerifyJob` re-declared the same fields a
fourth time for the HTTP schema.  :class:`VerifyOptions` is the single
consolidated record: the CLI builds one from parsed arguments, the HTTP
API builds one inside ``VerifyJob.from_dict``, and the entry points
consume one directly — all through the same :meth:`VerifyOptions.from_dict`
/ :meth:`VerifyOptions.to_dict` pair.

The old keyword arguments keep working through a mapping shim
(:meth:`VerifyOptions.from_legacy_kwargs`): the first legacy call per
process emits a single :class:`DeprecationWarning` naming the new API,
then every legacy keyword is folded into an equivalent options record —
verdicts and cache keys are unaffected by which spelling a caller uses.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional

from ..encoding.translator import TranslationOptions

#: Accepted values of :attr:`VerifyOptions.encoding`.
ENCODINGS = ("eij", "small_domain")

#: Legacy keyword -> options field for entry points whose old name differs
#: (``verify_design_decomposed(solvers=...)`` raced a list of backends —
#: exactly what ``portfolio`` means everywhere else).
_LEGACY_ALIASES = {"solvers": "portfolio"}

_legacy_warned = False


def _warn_legacy_kwargs(entry_point: str, names) -> None:
    """One ``DeprecationWarning`` per process for legacy keyword calls."""
    global _legacy_warned
    if _legacy_warned:
        return
    _legacy_warned = True
    warnings.warn(
        "%s(%s=...) keyword arguments are deprecated; pass a "
        "repro.verify.VerifyOptions instead (the keywords keep working "
        "through this shim)" % (entry_point, "/".join(sorted(names))),
        DeprecationWarning,
        # warn -> _warn_legacy_kwargs -> from_legacy_kwargs ->
        # _resolve_options -> entry point -> the caller's frame.
        stacklevel=5,
    )


@dataclass
class VerifyOptions:
    """Everything a verification request can configure, in one record.

    ``translation`` (a full :class:`~repro.encoding.TranslationOptions`)
    overrides the plain ``encoding`` string when set; it is the only field
    excluded from the dict round-trip, because it is not part of the
    HTTP-facing schema — service submissions select the encoding by name.
    ``solver_options`` carries backend-specific knobs (restart intervals,
    decay factors, ...) exactly as the old ``**solver_options`` catch-all
    did.
    """

    solver: str = "chaff"
    #: backend names (or :class:`~repro.exec.Strategy` objects / an int
    #: shortlist size, as ``verify_design(portfolio=...)`` always took) to
    #: race instead of running ``solver`` alone.
    portfolio: Optional[List[str]] = None
    #: decomposed criterion with N parallel runs (0 = monolithic).
    decompose: int = 0
    encoding: str = "eij"
    time_limit: Optional[float] = None
    seed: int = 0
    #: decomposition / variation execution shape (``"incremental"`` /
    #: ``"batch"`` / ``"race"`` / ``"sweep"``; None picks the default).
    mode: Optional[str] = None
    #: pipeline element to window the decomposition on (None = default).
    window_element: Optional[str] = None
    #: force (True) or forbid (False) the warm incremental path.
    incremental: Optional[bool] = None
    max_workers: Optional[int] = None
    #: persistent artifact cache directory (None = resolve the default via
    #: ``REPRO_CACHE_DIR``; empty string = disable the disk tier).
    cache_dir: Optional[str] = None
    #: backend-specific solver options (the old ``**solver_options``).
    solver_options: Dict[str, object] = field(default_factory=dict)
    #: full translation configuration; overrides ``encoding`` when set.
    translation: Optional[TranslationOptions] = None

    # ------------------------------------------------------------------
    def translation_options(self) -> TranslationOptions:
        """The :class:`TranslationOptions` this request resolves to."""
        if self.translation is not None:
            return self.translation
        return TranslationOptions(encoding=self.encoding)

    def replace(self, **changes) -> "VerifyOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def validate(self) -> None:
        """Strict type/value validation (raises ``ValueError``).

        This is the option half of the service's submission-time checks;
        :meth:`repro.service.VerifyJob.validate` delegates here and adds
        the scheduling-field checks.
        """
        from ..sat.registry import get_backend

        for name, value in (("decompose", self.decompose), ("seed", self.seed)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError("%s must be an integer, got %r" % (name, value))
        if self.time_limit is not None and not isinstance(
            self.time_limit, (int, float)
        ):
            raise ValueError(
                "time_limit must be a number or null, got %r" % (self.time_limit,)
            )
        if not isinstance(self.solver, str):
            raise ValueError("solver must be a string")
        if self.portfolio is not None and (
            not self.portfolio
            or not all(isinstance(name, str) for name in self.portfolio)
        ):
            raise ValueError("portfolio must be a non-empty list of backend names")
        if self.encoding not in ENCODINGS:
            raise ValueError("unknown encoding %r" % (self.encoding,))
        if self.decompose < 0:
            raise ValueError("decompose must be >= 0")
        if not isinstance(self.solver_options, dict):
            raise ValueError(
                "solver_options must be a dictionary, got %r"
                % (self.solver_options,)
            )
        for name in self.portfolio or [self.solver]:
            get_backend(name)

    # ------------------------------------------------------------------
    @classmethod
    def field_names(cls) -> tuple:
        """The dict-serialisable field names (``translation`` excluded)."""
        return tuple(f.name for f in fields(cls) if f.name != "translation")

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON rendering (the HTTP schema's option half)."""
        payload: Dict[str, object] = {}
        for name in self.field_names():
            value = getattr(self, name)
            if name == "portfolio" and value is not None:
                value = list(value)
            elif name == "solver_options":
                value = dict(value)
            payload[name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "VerifyOptions":
        """Build options from a submission dictionary (unknown keys raise)."""
        known = set(cls.field_names())
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                "unknown option field(s) %s; accepted: %s"
                % (", ".join(unknown), ", ".join(sorted(known)))
            )
        options = cls(**payload)  # type: ignore[arg-type]
        if options.portfolio is not None:
            options.portfolio = list(options.portfolio)
        options.solver_options = dict(options.solver_options or {})
        return options

    # ------------------------------------------------------------------
    @classmethod
    def from_legacy_kwargs(
        cls,
        entry_point: str,
        translation: Optional[TranslationOptions] = None,
        **kwargs,
    ) -> "VerifyOptions":
        """Mapping shim for the pre-``VerifyOptions`` keyword surface.

        Keywords naming an options field map directly (``solvers`` maps to
        ``portfolio``); everything else is a backend-specific solver
        option, exactly as the old ``**solver_options`` catch-alls took
        them.  Emits one :class:`DeprecationWarning` per process.
        """
        _warn_legacy_kwargs(entry_point, tuple(kwargs) or ("options",))
        known = set(cls.field_names())
        direct: Dict[str, object] = {}
        solver_options: Dict[str, object] = {}
        for name, value in kwargs.items():
            name = _LEGACY_ALIASES.get(name, name)
            if name in known and name != "solver_options":
                direct[name] = value
            else:
                solver_options[name] = value
        options = cls(**direct)
        options.solver_options = solver_options
        options.translation = translation
        if translation is not None:
            options.encoding = translation.encoding
        return options
