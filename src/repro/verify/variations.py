"""Structural and parameter variations run "in parallel" (Section 5).

The paper accelerates bug hunting by running several copies of the tool flow
on the same design, each with a different way of *generating* the Boolean
correctness formula (structural variations) or different solver command
parameters (parameter variations), and taking the minimum time to a
counterexample.  The variations are:

* **base** — nested-ITE elimination of UFs and UPs, no early reduction;
* **ER**   — early reduction of p-equations during UF elimination;
* **AC**   — Ackermann constraints for eliminating UPs;
* **ER+AC** — both;
* **base1/2/3** — the base formula solved by Chaff with modified restart
  period / restart randomness, mirroring the ``cherry`` parameter file edits
  suggested by Moskewicz.

All runs execute sequentially here; the scoring helpers apply the
minimum-time (bug hunting) or maximum-time (correctness proof) semantics the
paper uses for its parallel experiments.  Each variation family shares one
:class:`~repro.pipeline.VerificationPipeline`, so artifacts common to the
runs are built once: the parameter variations reuse a single CNF across all
four Chaff configurations, and the structural variations share the
correctness formula (their elimination/encoding options differ).  With an
incremental backend the parameter variations go further and share one
**warm solver**, reconfigured between runs (see
:func:`run_parameter_variations`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..encoding.translator import TranslationOptions
from ..encoding.uf_elimination import ACKERMANN
from ..exec.executor import PortfolioExecutor
from ..exec.strategy import Strategy
from ..pipeline.pipeline import VerificationPipeline
from ..sat.registry import get_backend
from ..sat.types import Budget
from .flow import VerificationResult


def structural_variations(encoding: str = "eij") -> List[Tuple[str, TranslationOptions]]:
    """The four structural variations of Table 2: base, ER, AC, ER+AC."""
    return [
        ("base", TranslationOptions(encoding=encoding)),
        ("ER", TranslationOptions(encoding=encoding, early_reduction=True)),
        ("AC", TranslationOptions(encoding=encoding, up_scheme=ACKERMANN)),
        (
            "ER+AC",
            TranslationOptions(
                encoding=encoding, early_reduction=True, up_scheme=ACKERMANN
            ),
        ),
    ]


def parameter_variations() -> List[Tuple[str, Dict[str, object]]]:
    """Chaff command-parameter variations (restart period / randomness)."""
    return [
        ("base", {}),
        ("base1", {"restart_interval": 3000}),
        ("base2", {"restart_interval": 4000}),
        ("base3", {"restart_randomness": 10}),
    ]


@dataclass
class VariationOutcome:
    """Results of all variation runs for one design.

    The runs of a family share one pipeline, and the run helpers pre-build
    the artifacts common to the whole family *before* the race starts, so
    each run's ``total_seconds`` bills only its own work: the structural
    variations pay their per-option translation, the parameter variations
    (one shared CNF) pay essentially pure SAT-checking time.  That keeps the
    totals comparable regardless of run order.
    """

    design: str
    results: List[VerificationResult]
    #: label of the first-winner strategy when the family was run as a race
    #: (``run_parameter_variations(mode="race")``); ``None`` for sweeps and
    #: for races with no definitive answer.
    winner_label: Optional[str] = None

    def best_bug_time(self) -> float:
        """Minimum time to a counterexample (parallel bug-hunting semantics)."""
        buggy = [r for r in self.results if r.is_buggy]
        pool = buggy or self.results
        return min(r.total_seconds for r in pool)

    def proof_time(self) -> float:
        """Maximum time over all runs (parallel correctness-proof semantics)."""
        return max(r.total_seconds for r in self.results)

    def fastest(self) -> VerificationResult:
        return min(self.results, key=lambda r: r.total_seconds)


def run_structural_variations(
    model_factory,
    solver: str = "chaff",
    encoding: str = "eij",
    time_limit: Optional[float] = None,
    seed: int = 0,
) -> VariationOutcome:
    """Run the base/ER/AC/ER+AC variations on one design.

    ``model_factory`` builds the model under test; all four runs share one
    pipeline, so the Burch–Dill formula is constructed once and only the
    option-dependent stages (elimination, encoding, CNF, solve) are rebuilt
    per variation.
    """
    model = model_factory()
    pipeline = VerificationPipeline(model)
    # Build the stage shared by all four variations (the Burch–Dill formula)
    # before the race, so no single run is billed for it.
    pipeline.correctness()
    results = [
        pipeline.run(
            solver=solver,
            options=options,
            time_limit=time_limit,
            seed=seed,
            label=label,
        )
        for label, options in structural_variations(encoding)
    ]
    return VariationOutcome(design=model.name, results=results)


def run_parameter_variations(
    model_factory,
    options=None,
    **legacy,
) -> VariationOutcome:
    """Run the base/base1/base2/base3 Chaff parameter variations.

    Configuration comes from a :class:`~repro.verify.VerifyOptions`
    (``solver`` / ``encoding`` / ``time_limit`` / ``seed`` /
    ``incremental`` / ``max_workers``; ``mode=None`` means ``"sweep"``).
    The legacy keyword spelling (``solver=...``, ``mode="race"``, ...)
    keeps working through the shared mapping shim, which emits one
    :class:`DeprecationWarning` per process.

    All four runs consume the *same* CNF artifact — only the solver's
    command parameters differ — so the translation happens exactly once.

    ``mode="race"`` runs the four configurations as a true first-winner
    race on the :class:`~repro.exec.PortfolioExecutor` — each gets a cold
    solver searching the shared CNF independently (the paper's parallel
    parameter runs) and the first definitive answer cancels the rest via
    the shared cancellation token.  The outcome's ``winner_label`` names
    the winning configuration; cancelled losers come back
    ``inconclusive``.  The default ``mode="sweep"`` keeps the sequential
    semantics below (including the warm-solver sharing).

    With an incremental backend (the CDCL family; the default ``chaff``
    qualifies) the four configurations additionally share **one warm
    solver**: the engine is reconfigured between calls instead of being
    rebuilt, so the state accumulated by earlier variations carries into
    later ones.  Once the shared CNF has been decided, the later variations
    replay essentially for free — a root-level UNSAT is latched by the
    engine and a SAT answer is re-derived from the saved phases — which is
    the fast shape for verification throughput but deliberately *not* a
    race between independently-searching configurations.  To measure the
    paper's Table-2 parameter race (each configuration searching the
    instance from scratch), pass ``incremental=False``, which gives every
    variation its own cold solver.  Before every warm variation the
    engine's RNG is reseeded with ``seed``, so the ``base3``
    restart-randomness run is reproducible regardless of how much
    randomness the earlier variations consumed.  Engines that advertise
    ``incremental`` but do not implement ``reconfigure`` (it is not part of
    the minimal :class:`~repro.sat.incremental.IncrementalSolver` protocol)
    fall back to the cold path.
    """
    from .flow import _resolve_options

    opts = _resolve_options("run_parameter_variations", options, legacy)
    mode = opts.mode or "sweep"
    if mode not in ("sweep", "race"):
        raise ValueError(
            "unknown variation mode %r; expected 'sweep' or 'race'" % (mode,)
        )
    solver = opts.solver
    time_limit = opts.time_limit
    seed = opts.seed
    incremental = opts.incremental
    max_workers = opts.max_workers
    model = model_factory()
    pipeline = VerificationPipeline(model, cache_dir=opts.cache_dir)
    options = opts.translation_options()
    backend = get_backend(solver)
    if mode == "race":
        strategies = [
            Strategy(
                solver=solver,
                options=options,
                solver_options=dict(solver_options),
                seed=seed,
                label=label,
            )
            for label, solver_options in parameter_variations()
        ]
        results = pipeline.run_portfolio(
            strategies,
            time_limit=time_limit,
            executor=PortfolioExecutor(max_workers=max_workers),
        )
        winner = next((r for r in results if r.race and r.race["is_winner"]), None)
        return VariationOutcome(
            design=model.name,
            results=results,
            winner_label=winner.label if winner is not None else None,
        )
    if incremental is None:
        incremental = backend.incremental
    # All four runs race on the same CNF; build it before the race so the
    # first configuration is not billed for the shared translation.
    cnf = pipeline.cnf(options)
    engine = backend.factory(cnf, seed, {}) if incremental else None
    if engine is not None and not callable(getattr(engine, "reconfigure", None)):
        # The minimal IncrementalSolver protocol does not require
        # reconfigure; engines without it take the cold path.
        engine = None
    if engine is None:
        results = [
            pipeline.run(
                solver=solver,
                options=options,
                time_limit=time_limit,
                seed=seed,
                label=label,
                **solver_options,
            )
            for label, solver_options in parameter_variations()
        ]
        return VariationOutcome(design=model.name, results=results)

    translation = pipeline.encoded(options)
    results = []
    for label, solver_options in parameter_variations():
        engine.reconfigure(seed=seed, **solver_options)
        budget = Budget(time_limit=time_limit)
        record = engine.solve(budget)
        packaged = pipeline._package(
            record, translation, cnf, 0.0, record.stats.time_seconds, label
        )
        packaged.incremental = {
            "solve_calls": record.stats.solve_calls,
            "kept_learned_clauses": record.stats.kept_learned_clauses,
            "conflicts": record.stats.conflicts,
        }
        results.append(packaged)
    return VariationOutcome(design=model.name, results=results)
