"""Structural and parameter variations run "in parallel" (Section 5).

The paper accelerates bug hunting by running several copies of the tool flow
on the same design, each with a different way of *generating* the Boolean
correctness formula (structural variations) or different solver command
parameters (parameter variations), and taking the minimum time to a
counterexample.  The variations are:

* **base** — nested-ITE elimination of UFs and UPs, no early reduction;
* **ER**   — early reduction of p-equations during UF elimination;
* **AC**   — Ackermann constraints for eliminating UPs;
* **ER+AC** — both;
* **base1/2/3** — the base formula solved by Chaff with modified restart
  period / restart randomness, mirroring the ``cherry`` parameter file edits
  suggested by Moskewicz.

All runs execute sequentially here; the scoring helpers apply the
minimum-time (bug hunting) or maximum-time (correctness proof) semantics the
paper uses for its parallel experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..encoding.translator import TranslationOptions
from ..encoding.uf_elimination import ACKERMANN, NESTED_ITE
from ..hdl.machine import ProcessorModel
from .flow import VerificationResult, verify_design


def structural_variations(encoding: str = "eij") -> List[Tuple[str, TranslationOptions]]:
    """The four structural variations of Table 2: base, ER, AC, ER+AC."""
    return [
        ("base", TranslationOptions(encoding=encoding)),
        ("ER", TranslationOptions(encoding=encoding, early_reduction=True)),
        ("AC", TranslationOptions(encoding=encoding, up_scheme=ACKERMANN)),
        (
            "ER+AC",
            TranslationOptions(
                encoding=encoding, early_reduction=True, up_scheme=ACKERMANN
            ),
        ),
    ]


def parameter_variations() -> List[Tuple[str, Dict[str, object]]]:
    """Chaff command-parameter variations (restart period / randomness)."""
    return [
        ("base", {}),
        ("base1", {"restart_interval": 3000}),
        ("base2", {"restart_interval": 4000}),
        ("base3", {"restart_randomness": 10}),
    ]


@dataclass
class VariationOutcome:
    """Results of all variation runs for one design."""

    design: str
    results: List[VerificationResult]

    def best_bug_time(self) -> float:
        """Minimum time to a counterexample (parallel bug-hunting semantics)."""
        buggy = [r for r in self.results if r.is_buggy]
        pool = buggy or self.results
        return min(r.total_seconds for r in pool)

    def proof_time(self) -> float:
        """Maximum time over all runs (parallel correctness-proof semantics)."""
        return max(r.total_seconds for r in self.results)

    def fastest(self) -> VerificationResult:
        return min(self.results, key=lambda r: r.total_seconds)


def run_structural_variations(
    model_factory,
    solver: str = "chaff",
    encoding: str = "eij",
    time_limit: Optional[float] = None,
    seed: int = 0,
) -> VariationOutcome:
    """Run the base/ER/AC/ER+AC variations on one design.

    ``model_factory`` builds a fresh model (with its own expression manager)
    per run, mirroring independent parallel copies of the tool flow.
    """
    results = []
    design_name = ""
    for label, options in structural_variations(encoding):
        model = model_factory()
        design_name = model.name
        results.append(
            verify_design(
                model,
                options=options,
                solver=solver,
                time_limit=time_limit,
                seed=seed,
                label=label,
            )
        )
    return VariationOutcome(design=design_name, results=results)


def run_parameter_variations(
    model_factory,
    solver: str = "chaff",
    encoding: str = "eij",
    time_limit: Optional[float] = None,
    seed: int = 0,
) -> VariationOutcome:
    """Run the base/base1/base2/base3 Chaff parameter variations."""
    results = []
    design_name = ""
    options = TranslationOptions(encoding=encoding)
    for label, solver_options in parameter_variations():
        model = model_factory()
        design_name = model.name
        results.append(
            verify_design(
                model,
                options=options,
                solver=solver,
                time_limit=time_limit,
                seed=seed,
                label=label,
                **solver_options,
            )
        )
    return VariationOutcome(design=design_name, results=results)
