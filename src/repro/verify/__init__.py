"""Burch–Dill correspondence checking, decomposition, variations, tool flow."""

from .burch_dill import (
    CorrectnessComponents,
    build_components,
    correctness_formula,
    element_equality,
)
from .decomposition import WeakCriterion, decompose, group_criteria
from .flow import (
    BUGGY,
    INCONCLUSIVE,
    VERIFIED,
    VerificationResult,
    formula_statistics,
    generate_correctness_cnf,
    score_parallel_runs,
    verify_design,
    verify_design_decomposed,
)
from .options import VerifyOptions
from .variations import (
    VariationOutcome,
    parameter_variations,
    run_parameter_variations,
    run_structural_variations,
    structural_variations,
)

__all__ = [
    "BUGGY",
    "CorrectnessComponents",
    "INCONCLUSIVE",
    "VERIFIED",
    "VariationOutcome",
    "VerificationResult",
    "VerifyOptions",
    "WeakCriterion",
    "build_components",
    "correctness_formula",
    "decompose",
    "element_equality",
    "formula_statistics",
    "generate_correctness_cnf",
    "group_criteria",
    "parameter_variations",
    "run_parameter_variations",
    "run_structural_variations",
    "score_parallel_runs",
    "structural_variations",
    "verify_design",
    "verify_design_decomposed",
]
