"""Command-line front end: ``python -m repro {verify,race,bench,fuzz,cache,serve,submit,status}``.

The CLI exposes the whole stack as a service entry point:

* ``verify``  — one design through one configuration (or the decomposed
  criterion with ``--decompose N``);
* ``race``    — a first-winner portfolio race across SAT backends and
  parameter variations (``--smoke`` is the tiny CI variant);
* ``bench``   — sequential sweep vs portfolio race on one design, printing
  both wall clocks;
* ``fuzz``    — differential fuzzing over the generated processor families
  (``--smoke`` is the 10-triple CI subset, ``--budget`` the nightly form);
* ``sweep``   — deterministic telemetry sweep over the generated grid that
  trains the learned portfolio advisor (``--smoke`` is the CI subset);
* ``cache``   — inspect, clear or LRU-prune (``prune --max-size MB``) the
  persistent content-addressed artifact cache;
* ``serve``   — run the long-lived verification service: persistent warm
  worker pool + priority/fair-share job scheduler behind a stdlib
  JSON-over-HTTP API (``--smoke`` is the CI round-trip);
* ``submit``  — send one verification job to a running server (``--wait``
  blocks for the verdict);
* ``status``  — query a running server for one job or the whole queue.

Designs are either catalogue names (``pipe3``, ``dlx1``, ``dlx2``,
``dlx2-ex``, ``vliw``) or generated-family specs such as
``gen:depth=5,width=2,forwarding=off,branch=stall,wbr=on`` (every knob
optional — see ``repro.gen``); mutations are injected with ``--bugs`` for
both kinds.

The persistent cache is on by default under ``~/.cache/repro`` (override
with ``--cache-dir``, the ``REPRO_CACHE_DIR`` environment variable, or
disable with ``--no-cache``), so a repeat verification of an unchanged
design replays its translation — and any definitive verdict — from disk.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .encoding.translator import TranslationOptions
from .exec import PortfolioExecutor, default_portfolio, solver_portfolio
from .pipeline import VerificationPipeline
from .pipeline.artifacts import CACHE_DIR_ENV, DiskCache
from .sat.registry import registered_backends

def make_model(design: str, bugs: Optional[List[str]] = None):
    """Instantiate a benchmark design by CLI name or ``gen:`` spec.

    Thin wrapper over :func:`repro.service.jobs.resolve_design` (shared
    with the verification service) that renders configuration mistakes as
    one-line usage errors instead of tracebacks.
    """
    from .service.jobs import resolve_design

    try:
        return resolve_design(design, bugs=bugs or [])
    except ValueError as exc:  # unknown design/bug id, malformed spec
        raise SystemExit("usage error: %s" % exc)


def resolve_cache_dir(args) -> Optional[str]:
    """The cache directory for this invocation (None disables the cache)."""
    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "cache_dir", None):
        return args.cache_dir
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join("~", ".cache", "repro")


def _parse_csv(value: Optional[str]) -> Optional[List[str]]:
    if not value:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def _print_result(result, as_json: bool) -> None:
    if as_json:
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
        return
    print("design           : %s" % result.design)
    print("verdict          : %s" % result.verdict)
    print("solver           : %s" % result.solver_result.solver_name)
    print("label            : %s" % result.label)
    print(
        "CNF              : %d variables, %d clauses"
        % (result.cnf_vars, result.cnf_clauses)
    )
    print(
        "time             : %.3fs translate + %.3fs solve = %.3fs"
        % (result.translate_seconds, result.solve_seconds, result.total_seconds)
    )
    if result.race:
        print(
            "race             : winner=%s mode=%s strategies=%d cancelled=%d "
            "wall=%.3fs"
            % (
                result.race.get("winner"),
                result.race.get("mode"),
                result.race.get("strategies", 0),
                result.race.get("cancelled", 0),
                result.race.get("wall_seconds", 0.0),
            )
        )
    if result.cache_stats:
        for stage in ("Translate", "Solve"):
            counters = result.cache_stats.get(stage)
            if counters:
                print(
                    "cache %-10s : hits=%d misses=%d disk_hits=%d disk_writes=%d"
                    % (
                        stage,
                        counters["hits"],
                        counters["misses"],
                        counters["disk_hits"],
                        counters["disk_writes"],
                    )
                )
    if result.counterexample:
        shown = sorted(result.counterexample)[:8]
        print("counterexample   : %d control signals, e.g." % len(result.counterexample))
        for name in shown:
            print("    %-32s = %s" % (name, result.counterexample[name]))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_verify(args) -> int:
    from .verify import (
        VerifyOptions,
        score_parallel_runs,
        verify_design,
        verify_design_decomposed,
    )

    model = make_model(args.design, _parse_csv(args.bugs))
    # One consolidated options record from the parsed arguments — the same
    # schema the HTTP API parses (VerifyJob.from_dict) and the library
    # entry points consume.
    options = VerifyOptions(
        solver=args.solver,
        decompose=args.decompose or 0,
        encoding=args.encoding,
        time_limit=args.time_limit,
        seed=args.seed,
        cache_dir=resolve_cache_dir(args),
    )
    if options.decompose:
        results = verify_design_decomposed(model, options=options)
        for result in results:
            print(
                "%-40s %-12s %.3fs" % (result.label, result.verdict, result.total_seconds)
            )
        overall = score_parallel_runs(results, hunting_bugs=bool(args.bugs))
        print("overall: %s" % overall.verdict)
        return 0
    result = verify_design(model, options)
    _print_result(result, args.json)
    return 0


def cmd_race(args) -> int:
    if args.smoke:
        # Tiny deterministic CI configuration: buggy pipe3, three CDCL
        # backends, generous budget backstop.
        args.design = args.design or "pipe3"
        args.bugs = args.bugs or "no-forwarding"
        args.solvers = args.solvers or "chaff,berkmin,grasp"
        args.time_limit = args.time_limit or 60.0
    args.design = args.design or "pipe3"
    model = make_model(args.design, _parse_csv(args.bugs))
    options = TranslationOptions(encoding=args.encoding)
    cache_dir = resolve_cache_dir(args)
    solvers = _parse_csv(args.solvers)
    if solvers:
        strategies = solver_portfolio(solvers, seed=args.seed)
    else:
        strategies = default_portfolio(seed=args.seed)
    pipeline = VerificationPipeline(model, cache_dir=cache_dir)
    results = pipeline.run_portfolio(
        strategies,
        time_limit=args.time_limit,
        max_workers=args.workers,
        default_options=options,
    )
    winner = next((r for r in results if r.race and r.race["is_winner"]), None)
    if args.json:
        print(
            json.dumps(
                [result.summary() for result in results], indent=2, sort_keys=True
            )
        )
    else:
        for result in results:
            race = result.race or {}
            if race.get("is_winner"):
                role = "winner"
            elif race.get("error"):
                role = "error"
            elif race.get("was_cancelled"):
                role = "cancelled"
            else:
                role = "finished"
            print(
                "%-28s %-12s %-10s %.3fs"
                % (result.label, result.verdict, role, result.solve_seconds)
            )
        if winner is not None:
            print(
                "\nwinner: %s (%s) in %.3fs wall [mode=%s]"
                % (
                    winner.label,
                    winner.verdict,
                    winner.race["wall_seconds"],
                    winner.race["mode"],
                )
            )
        else:
            print("\nno definitive answer (all strategies exhausted their budgets)")
    if args.smoke:
        return 0 if winner is not None and winner.verdict == "buggy" else 1
    return 0


def cmd_bench(args) -> int:
    model = make_model(args.design, _parse_csv(args.bugs))
    options = TranslationOptions(encoding=args.encoding)
    solvers = _parse_csv(args.solvers) or ["chaff", "berkmin", "grasp"]
    pipeline = VerificationPipeline(model)
    pipeline.cnf(options)  # shared translation outside both timings

    started = time.perf_counter()
    sweep = pipeline.run_sweep(
        solvers, options=options, time_limit=args.time_limit, seed=args.seed
    )
    sweep_seconds = time.perf_counter() - started

    race_pipeline = VerificationPipeline(make_model(args.design, _parse_csv(args.bugs)))
    race_pipeline.cnf(options)
    started = time.perf_counter()
    results = race_pipeline.run_portfolio(
        solver_portfolio(solvers, seed=args.seed),
        time_limit=args.time_limit,
        max_workers=args.workers,
        default_options=options,
        executor=PortfolioExecutor(max_workers=args.workers, mode=args.mode),
    )
    race_seconds = time.perf_counter() - started
    winner = next((r for r in results if r.race and r.race["is_winner"]), None)

    print("design: %s   solvers: %s" % (args.design, ",".join(solvers)))
    for result in sweep:
        stats = result.solver_result.stats
        props_rate = (
            stats.propagations / result.solve_seconds
            if result.solve_seconds > 0
            else 0.0
        )
        print(
            "  sweep %-14s %-12s %.3fs  %8d props (%.0f/s)"
            % (
                result.solver_result.solver_name,
                result.verdict,
                result.solve_seconds,
                stats.propagations,
                props_rate,
            )
        )
        if stats.thy_propagations or stats.thy_conflicts or stats.thy_lemmas:
            # Lazy DPLL(T) backends: show the theory layer's share of the work.
            print(
                "        theory: %d props, %d conflicts, %d lemmas, "
                "%d merges, %d final checks"
                % (
                    stats.thy_propagations,
                    stats.thy_conflicts,
                    stats.thy_lemmas,
                    stats.thy_merges,
                    stats.thy_final_checks,
                )
            )
    print("sequential sweep : %.3fs" % sweep_seconds)
    print(
        "portfolio race   : %.3fs (winner: %s, %s)"
        % (
            race_seconds,
            winner.label if winner else "none",
            winner.verdict if winner else "-",
        )
    )
    if winner is not None and race_seconds < sweep_seconds:
        print("speedup          : %.2fx" % (sweep_seconds / max(race_seconds, 1e-9)))
    exported = sum(r.solver_result.stats.exported_clauses for r in results)
    imported = sum(r.solver_result.stats.imported_clauses for r in results)
    useful = sum(r.solver_result.stats.useful_imports for r in results)
    if exported or imported:
        print(
            "clause sharing   : %d exported, %d imported (%d useful)"
            % (exported, imported, useful)
        )
    return 0


def _parse_budget(value: Optional[str]) -> Optional[float]:
    """Parse a time budget like ``120``, ``120s`` or ``2m`` into seconds."""
    if value is None:
        return None
    text = value.strip().lower()
    scale = 1.0
    if text.endswith("m"):
        scale, text = 60.0, text[:-1]
    elif text.endswith("s"):
        text = text[:-1]
    try:
        seconds = float(text) * scale
    except ValueError:
        raise SystemExit(
            "usage error: bad --budget %r (expected seconds, '120s' or '2m')"
            % value
        ) from None
    if seconds <= 0:
        raise SystemExit("usage error: --budget must be positive")
    return seconds


def cmd_fuzz(args) -> int:
    from .gen import FuzzTriple, fuzz, run_triple, shrink_selftest

    cache_dir = resolve_cache_dir(args)

    if args.repro:
        try:
            triple = FuzzTriple.from_repro(args.repro)
        except ValueError as exc:
            raise SystemExit("usage error: bad --repro line: %s" % exc)
        outcome = run_triple(
            triple,
            solver=args.solver,
            time_limit=args.time_limit or 120.0,
            cache_dir=cache_dir,
        )
        if args.json:
            print(
                json.dumps(
                    {
                        "triple": triple.repro(),
                        "ok": outcome.ok,
                        "verdict": outcome.verdict,
                        "seconds": round(outcome.seconds, 3),
                        "replayed": outcome.replayed,
                        "detail": outcome.detail,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            status = "ok" if outcome.ok else "FAIL"
            print(
                "%-4s %-70s %-12s %.2fs %s"
                % (status, triple.label, outcome.verdict, outcome.seconds,
                   outcome.detail)
            )
        return 0 if outcome.ok else 1

    budget = _parse_budget(args.budget)
    count = args.count
    if args.smoke and count is None and budget is None:
        count = 10

    def narrate(outcome) -> None:
        status = "ok" if outcome.ok else "FAIL"
        replay = " [cache-replay]" if outcome.replayed else ""
        print(
            "%-4s %-70s %-12s %.2fs%s %s"
            % (status, outcome.triple.label, outcome.verdict, outcome.seconds,
               replay, outcome.detail),
            flush=True,
        )

    report = fuzz(
        count=count,
        budget_seconds=budget,
        seed=args.seed,
        smoke=args.smoke,
        solver=args.solver,
        time_limit=args.time_limit,
        cache_dir=cache_dir,
        on_outcome=None if args.json else narrate,
    )

    selftest_line = None
    if args.smoke:
        # CI acceptance: a deliberately failing triple must shrink to a
        # printable one-line repro (exercises the shrinker end to end).
        selftest_line = shrink_selftest().repro()
        if not args.json:
            print("shrink self-test: minimal failing repro -> %s"
                  % selftest_line)

    if args.json:
        payload = {
            "triples": len(report.outcomes),
            "failures": len(report.failures),
            "wall_seconds": round(report.wall_seconds, 3),
            "repro_lines": report.repro_lines(),
            "outcomes": [
                {
                    "triple": outcome.triple.repro(),
                    "ok": outcome.ok,
                    "verdict": outcome.verdict,
                    "seconds": round(outcome.seconds, 3),
                    "replayed": outcome.replayed,
                    "detail": outcome.detail,
                }
                for outcome in report.outcomes
            ],
        }
        if selftest_line is not None:
            payload["shrink_selftest"] = selftest_line
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            "\n%d triples in %.1fs: %d ok, %d failing"
            % (
                len(report.outcomes),
                report.wall_seconds,
                len(report.outcomes) - len(report.failures),
                len(report.failures),
            )
        )
        for line in report.repro_lines():
            print("shrunk repro: python -m repro fuzz --repro '%s'" % line)
    return 0 if report.ok else 1


def cmd_sweep(args) -> int:
    from .sweep import run_sweep, sweep_configs

    cache_dir = resolve_cache_dir(args)
    if cache_dir is None:
        raise SystemExit(
            "usage error: sweep populates the telemetry store and needs a "
            "cache directory; drop --no-cache or pass --cache-dir"
        )
    if args.configs is not None and args.configs < 1:
        raise SystemExit("usage error: --configs must be >= 1")
    if args.mutations is not None and args.mutations < 0:
        raise SystemExit("usage error: --mutations must be >= 0")
    if args.time_limit is not None and args.time_limit <= 0:
        raise SystemExit("usage error: --time-limit must be positive")
    portfolio = _parse_csv(args.solvers)
    kwargs = {}
    if args.configs is not None:
        kwargs["configs"] = sweep_configs(args.configs)
    if args.mutations is not None:
        kwargs["mutations"] = args.mutations
    report = run_sweep(
        cache_dir,
        portfolio=portfolio,
        time_limit=args.time_limit,
        seed=args.seed,
        smoke=args.smoke,
        echo=None if args.json else print,
        **kwargs,
    )
    if args.json:
        print(json.dumps(report.summary(), indent=2, sort_keys=True))
    else:
        print(
            "swept %d designs in %.1fs: %d recorded, %d already known; "
            "telemetry at %s"
            % (
                report.designs,
                report.seconds,
                report.recorded,
                report.skipped,
                report.store_path,
            )
        )
        for label, wins in sorted(report.winners.items()):
            print("  winner %-24s x%d" % (label, wins))
    return 0


def cmd_cache(args) -> int:
    cache_dir = resolve_cache_dir(args)
    if cache_dir is None:
        print("cache disabled (--no-cache)")
        return 0
    cache = DiskCache(cache_dir)
    if args.action == "path":
        print(cache.root)
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print("removed %d cache entries from %s" % (removed, cache.root))
        return 0
    if args.action == "prune":
        if args.max_size is None:
            raise SystemExit("usage error: cache prune requires --max-size <MB>")
        if args.max_size < 0:
            raise SystemExit("usage error: --max-size must be >= 0")
        report = cache.prune(int(args.max_size * 1024 * 1024))
        print(
            "pruned %d entries (%d bytes) from %s; %d entries (%d bytes) kept"
            % (
                report["removed"],
                report["freed_bytes"],
                cache.root,
                report["remaining_entries"],
                report["remaining_bytes"],
            )
        )
        if report.get("skipped"):
            print(
                "  skipped %d entries pruned concurrently by another node"
                % report["skipped"]
            )
        return 0
    stats = cache.stats()
    print("cache at %s" % cache.root)
    if not stats:
        print("  (empty)")
        return 0
    total_entries = 0
    total_bytes = 0
    for stage, info in stats.items():
        total_entries += info["entries"]
        total_bytes += info["bytes"]
        print("  %-18s %6d entries  %10d bytes" % (stage, info["entries"], info["bytes"]))
    print("  %-18s %6d entries  %10d bytes" % ("total", total_entries, total_bytes))
    return 0


def cmd_serve(args) -> int:
    from .service.cluster import LocalCluster, run_cluster_smoke
    from .service.server import run_smoke, serve

    cache_dir = resolve_cache_dir(args)
    nodes = args.nodes
    if nodes is None:
        nodes = int(os.environ.get("REPRO_NODES") or 1)
    if nodes > 1:
        if args.smoke:
            # Cluster CI acceptance: coordinator + N node processes,
            # concurrent clients, verdicts byte-identical to direct runs,
            # jobs spread across >= 2 nodes.
            return run_cluster_smoke(nodes=nodes)
        cluster = LocalCluster(
            nodes=nodes,
            host=args.host,
            port=args.port,
            cache_dir=cache_dir,
            node_workers=args.workers,
            prune_max_mb=args.max_cache_mb,
        )
        cluster.start()
        try:
            print(
                "verification cluster listening on %s "
                "(%d nodes x %d workers, cache=%s)"
                % (cluster.address, nodes, args.workers,
                   cache_dir or "ephemeral")
            )
            for node in cluster.registry.snapshot():
                print("  %-8s %s" % (node["id"], node["url"]))
            print(
                "submit with: python -m repro submit pipe3 --url %s --wait"
                % cluster.address
            )
            # The coordinator server is already serving on its own thread;
            # park the main thread until the operator interrupts.
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            cluster.stop()
        return 0
    if args.smoke:
        # CI acceptance: ephemeral server, two concurrent HTTP clients,
        # served verdicts byte-identical to direct verify_design runs.
        return run_smoke()
    server = serve(
        host=args.host,
        port=args.port,
        cache_dir=cache_dir,
        workers=args.workers,
        prune_max_mb=args.max_cache_mb,
    )
    print(
        "verification service listening on %s (workers=%d, cache=%s)"
        % (server.address, args.workers, cache_dir or "disabled")
    )
    print("submit with: python -m repro submit pipe3 --url %s --wait" % server.address)
    server.serve_forever()
    return 0


def cmd_submit(args) -> int:
    from .service.server import ServiceClient

    payload = {
        "design": args.design,
        "bugs": _parse_csv(args.bugs) or [],
        "solver": args.solver,
        "encoding": args.encoding,
        "decompose": args.decompose,
        "time_limit": args.time_limit,
        "seed": args.seed,
        "priority": args.priority,
        "tenant": args.tenant,
    }
    solvers = _parse_csv(args.solvers)
    if solvers:
        payload["portfolio"] = solvers
    client = ServiceClient(args.url)
    try:
        submitted = client.submit(payload)
        if not args.wait:
            print(json.dumps(submitted, indent=2, sort_keys=True))
            return 0
        record = client.wait(submitted["id"], timeout=args.timeout)
    except (RuntimeError, TimeoutError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0 if record.get("state") == "done" else 1
    print("job      : %s" % record["id"])
    print("state    : %s" % record["state"])
    if record.get("error"):
        print("error    : %s" % record["error"])
        return 1
    result = record.get("result") or {}
    print("verdict  : %s" % result.get("verdict"))
    print("seconds  : %s" % record.get("seconds"))
    return 0


def cmd_status(args) -> int:
    from .service.server import ServiceClient

    client = ServiceClient(args.url)
    try:
        payload = client.status(args.job_id)
    except RuntimeError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json or args.job_id:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    stats = payload.get("stats", {})
    print(
        "queued=%s running=%s states=%s"
        % (stats.get("queued"), stats.get("running"), stats.get("states"))
    )
    try:
        health = client.healthz()
    except RuntimeError:
        health = {}
    advisor = health.get("advisor")
    if advisor:
        print(
            "advisor: races=%s advised=%s escalations=%s "
            "predicted_winner_rate=%s"
            % (
                advisor.get("races"),
                advisor.get("advised"),
                advisor.get("escalations"),
                advisor.get("predicted_winner_rate"),
            )
        )
    telemetry = health.get("telemetry")
    if telemetry:
        print(
            "telemetry: %s records (%s corrupt lines skipped) at %s"
            % (
                telemetry.get("records"),
                telemetry.get("corrupt_lines"),
                telemetry.get("path"),
            )
        )
    for node in health.get("nodes", []):
        print(
            "node %-8s %-24s %-5s routed=%-4s done=%-4s lost=%s"
            % (
                node["id"],
                node["url"],
                "alive" if node["alive"] else "DEAD",
                node["jobs_routed"],
                node["jobs_completed"],
                node["jobs_lost"],
            )
        )
    for job in payload.get("jobs", []):
        print(
            "%-34s %-8s pri=%-3d %-12s %-24s %s"
            % (
                job["id"],
                job["state"],
                job["priority"],
                job["tenant"],
                job["design"],
                job.get("verdict") or "-",
            )
        )
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Formal verification portfolio runner (Velev & Bryant, DAC 2001)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    design_help = (
        "design name (pipe3, dlx1, dlx2, dlx2-ex, vliw) or generated-family "
        "spec (gen:depth=3..7,width=1..2,forwarding=on|off,"
        "branch=squash|stall,wbr=on|off; every knob optional)"
    )

    def add_common(p, design_required=True):
        if design_required:
            p.add_argument("design", help=design_help)
        else:
            p.add_argument("design", nargs="?", default=None, help=design_help)
        p.add_argument("--bugs", default=None, help="comma-separated bug ids to inject")
        p.add_argument("--encoding", default="eij", choices=("eij", "small_domain"))
        p.add_argument("--time-limit", type=float, default=None)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--cache-dir", default=None, help="persistent cache directory")
        p.add_argument("--no-cache", action="store_true", help="disable the persistent cache")
        p.add_argument("--json", action="store_true", help="machine-readable output")

    p_verify = sub.add_parser("verify", help="verify one design with one solver")
    add_common(p_verify)
    p_verify.add_argument("--solver", default="chaff", help="one of: %s" % ", ".join(registered_backends()))
    p_verify.add_argument("--decompose", type=int, default=0, metavar="N",
                          help="use the decomposed criterion with N parallel runs")
    p_verify.set_defaults(func=cmd_verify)

    p_race = sub.add_parser("race", help="first-winner portfolio race")
    add_common(p_race, design_required=False)
    p_race.add_argument("--solvers", default=None,
                        help="comma-separated backends (default: stock portfolio)")
    p_race.add_argument("--workers", type=int, default=None)
    p_race.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration (buggy pipe3, 3 backends)")
    p_race.set_defaults(func=cmd_race)

    p_bench = sub.add_parser("bench", help="sequential sweep vs portfolio race")
    add_common(p_bench)
    p_bench.add_argument("--solvers", default=None)
    p_bench.add_argument("--workers", type=int, default=None)
    p_bench.add_argument("--mode", default=None, choices=("processes", "threads", "inline"))
    p_bench.set_defaults(func=cmd_bench)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing over generated processor families",
        description=(
            "Sample (config, seed, mutation) triples over the generated "
            "pipeline grid: correct instances must verify UNSAT, mutated "
            "instances must yield a counterexample that replays identically "
            "from the warm cache; failures shrink to a one-line repro."
        ),
    )
    p_fuzz.add_argument("--count", type=int, default=None,
                        help="number of triples to run")
    p_fuzz.add_argument("--budget", default=None, metavar="SECONDS",
                        help="wall-clock budget (e.g. 120, 120s, 2m)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="fuzzing stream seed")
    p_fuzz.add_argument("--smoke", action="store_true",
                        help="10-triple CI subset + shrink self-test")
    p_fuzz.add_argument("--solver", default="chaff",
                        help="one of: %s" % ", ".join(registered_backends()))
    p_fuzz.add_argument("--time-limit", type=float, default=None,
                        help="per-triple solver budget in seconds")
    p_fuzz.add_argument("--repro", default=None, metavar="LINE",
                        help="replay one shrunk repro line and exit")
    p_fuzz.add_argument("--cache-dir", default=None)
    p_fuzz.add_argument("--no-cache", action="store_true",
                        help="disable the persistent cache (skips the "
                        "warm-replay check)")
    p_fuzz.add_argument("--json", action="store_true")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_sweep = sub.add_parser(
        "sweep",
        help="telemetry grid sweep: train the learned portfolio advisor",
        description=(
            "Run every portfolio strategy to completion on a deterministic "
            "slice of the generated-processor grid (correct + mutated "
            "designs) and append one telemetry record per design; the "
            "StrategyAdvisor trains on this store to shortlist future "
            "races (see REPRO_ADVISOR)."
        ),
    )
    p_sweep.add_argument("--configs", type=int, default=None, metavar="N",
                         help="gen: grid configurations to sweep (default 8)")
    p_sweep.add_argument("--mutations", type=int, default=None, metavar="M",
                         help="mutated designs per configuration (default 2)")
    p_sweep.add_argument("--solvers", default=None, metavar="CSV",
                         help="strategy backends (default: stock portfolio)")
    p_sweep.add_argument("--time-limit", type=float, default=None,
                         help="per-strategy solver budget in seconds")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--smoke", action="store_true",
                         help="tiny CI sweep: 2 shallow configs x 1 mutation")
    p_sweep.add_argument("--cache-dir", default=None)
    p_sweep.add_argument("--no-cache", action="store_true",
                         help=argparse.SUPPRESS)
    p_sweep.add_argument("--json", action="store_true")
    p_sweep.set_defaults(func=cmd_sweep)

    p_cache = sub.add_parser("cache", help="inspect the persistent artifact cache")
    p_cache.add_argument("action", nargs="?", default="stats",
                         choices=("stats", "clear", "path", "prune"))
    p_cache.add_argument("--cache-dir", default=None)
    p_cache.add_argument("--max-size", type=float, default=None, metavar="MB",
                         help="prune: evict least-recently-written entries "
                         "until the cache fits this many megabytes")
    p_cache.add_argument("--no-cache", action="store_true", help=argparse.SUPPRESS)
    p_cache.set_defaults(func=cmd_cache)

    p_serve = sub.add_parser(
        "serve",
        help="run the verification service (warm pool + job scheduler + HTTP)",
        description=(
            "Long-lived JSON-over-HTTP verification service: jobs go into "
            "priority/fair-share queues, execute on scheduler workers that "
            "share the process' persistent warm solver pool, and their "
            "records persist on the artifact cache."
        ),
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8155,
                         help="TCP port (0 picks a free one)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="scheduler worker threads (per node with --nodes)")
    p_serve.add_argument("--nodes", type=int, default=None, metavar="N",
                         help="launch a local cluster: a coordinator routing "
                         "over N worker-node processes (default $REPRO_NODES "
                         "or 1 = single server)")
    p_serve.add_argument("--max-cache-mb", type=float, default=None,
                         help="LRU-prune the cache to this size periodically")
    p_serve.add_argument("--cache-dir", default=None)
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the persistent cache")
    p_serve.add_argument("--smoke", action="store_true",
                         help="CI round-trip: ephemeral server, 2 concurrent "
                         "clients, byte-identical verdict check")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser("submit", help="submit one job to a running server")
    p_submit.add_argument("design", help=design_help)
    p_submit.add_argument("--bugs", default=None,
                          help="comma-separated bug ids to inject")
    p_submit.add_argument("--solver", default="chaff",
                          help="one of: %s" % ", ".join(registered_backends()))
    p_submit.add_argument("--solvers", default=None, metavar="CSV",
                          help="race these backends instead of --solver")
    p_submit.add_argument("--decompose", type=int, default=0, metavar="N")
    p_submit.add_argument("--encoding", default="eij",
                          choices=("eij", "small_domain"))
    p_submit.add_argument("--time-limit", type=float, default=None)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--priority", type=int, default=0,
                          help="larger runs earlier")
    p_submit.add_argument("--tenant", default="default",
                          help="fair-share accounting bucket")
    p_submit.add_argument("--url", default="http://127.0.0.1:8155")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the verdict arrives")
    p_submit.add_argument("--timeout", type=float, default=600.0)
    p_submit.add_argument("--json", action="store_true")
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser("status", help="query a running server")
    p_status.add_argument("job_id", nargs="?", default=None)
    p_status.add_argument("--url", default="http://127.0.0.1:8155")
    p_status.add_argument("--json", action="store_true")
    p_status.set_defaults(func=cmd_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Configuration errors (unknown solver, bad option values) are user
        # errors, not crashes: print the message, not a traceback.
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
